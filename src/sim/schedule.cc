#include "sim/schedule.h"

#include <algorithm>
#include <thread>

#include "common/panic.h"

namespace btrace {

SliceSchedule
SliceSchedule::build(const Workload &wl, ReplayMode mode, double duration,
                     uint64_t seed, double slice_mean_sec)
{
    SliceSchedule s;
    s.perCore.resize(kCores);
    s.starts.resize(kCores);
    s.cursor.assign(kCores, 0);

    for (unsigned c = 0; c < kCores; ++c) {
        auto &slices = s.perCore[c];
        auto &idx = s.starts[c];

        if (mode == ReplayMode::CoreLevel) {
            const uint32_t tid = globalThreadId(uint16_t(c), 0);
            slices.push_back(Slice{0.0, duration * 2.0 + 1.0, tid});
            idx[tid].push_back(0.0);
            continue;
        }

        Prng rng(seed * 1000003ull + c * 7919ull + wl.seed);
        const uint32_t total = std::max<uint32_t>(1, wl.totalThreads[c]);
        const uint32_t active =
            std::max<uint32_t>(1, std::min(wl.activeThreads[c], total));

        // Working set of runnable threads, resampled every second.
        std::vector<uint32_t> working;
        double window_end = 0.0;
        auto resample = [&]() {
            working.clear();
            for (uint32_t k = 0; k < active; ++k) {
                // Distinctness is not essential for the model; a rare
                // duplicate only means a thread runs twice as often.
                working.push_back(uint32_t(rng.nextBounded(total)));
            }
            window_end += 1.0;
        };
        resample();

        double t = 0.0;
        while (t < duration) {
            if (t >= window_end)
                resample();
            double len = rng.exponential(slice_mean_sec);
            len = std::clamp(len, slice_mean_sec * 0.1,
                             slice_mean_sec * 10.0);
            const uint32_t local =
                working[rng.nextBounded(working.size())];
            const uint32_t tid = globalThreadId(uint16_t(c), local);
            const double end = std::min(t + len, duration * 2.0 + 1.0);
            slices.push_back(Slice{t, end, tid});
            idx[tid].push_back(t);
            t = end;
        }
        // Terminal slice so queries at the very end stay valid.
        if (!slices.empty()) {
            slices.back().end =
                std::max(slices.back().end, duration * 2.0 + 1.0);
        }
    }
    return s;
}

SliceSchedule::Running
SliceSchedule::runningAt(uint16_t core, double t) const
{
    const auto &slices = perCore.at(core);
    std::size_t &i = cursor[core];
    if (i >= slices.size() || slices[i].start > t)
        i = 0;  // non-monotonic query; restart the scan
    while (i + 1 < slices.size() && slices[i].end <= t)
        ++i;
    const Slice &s = slices[i];
    return Running{s.thread, s.end};
}

double
SliceSchedule::nextRunAfter(uint16_t core, uint32_t thread, double t) const
{
    const auto &idx = starts.at(core);
    const auto it = idx.find(thread);
    if (it == idx.end())
        return never;
    const auto &ts = it->second;
    const auto pos = std::upper_bound(ts.begin(), ts.end(), t);
    return pos == ts.end() ? never : *pos;
}

std::size_t
SliceSchedule::distinctThreads(uint16_t core) const
{
    return starts.at(core).size();
}

// --- PreemptionInjector ----------------------------------------------

namespace {

inline uint32_t
pointBit(hooks::YieldPoint p)
{
    return 1u << static_cast<int>(p);
}

// splitmix64 finalizer: cheap, stateless-per-call decorrelation of the
// shared counter so concurrent arrivals get independent decisions.
inline uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

PreemptionInjector::PreemptionInjector()
{
    BTRACE_ASSERT(!hooks::hookInstalled(),
                  "only one PreemptionInjector may be active");
    hooks::setHook(&PreemptionInjector::trampoline, this);
}

PreemptionInjector::~PreemptionInjector()
{
    hooks::setHook(nullptr, nullptr);
    // Releasing a still-parked thread here would destroy state it is
    // about to touch; insist the test joined (or released) first.
    std::lock_guard lock(mu);
    for (const PointState &pt : points)
        BTRACE_ASSERT(!pt.parked,
                      "PreemptionInjector destroyed with a parked thread");
}

void
PreemptionInjector::armPark(hooks::YieldPoint point)
{
    std::lock_guard lock(mu);
    points[static_cast<int>(point)].armed = true;
    armedMask.fetch_or(pointBit(point), std::memory_order_release);
}

void
PreemptionInjector::disarm(hooks::YieldPoint point)
{
    std::lock_guard lock(mu);
    points[static_cast<int>(point)].armed = false;
    armedMask.fetch_and(~pointBit(point), std::memory_order_release);
}

bool
PreemptionInjector::awaitParked(hooks::YieldPoint point,
                                std::chrono::milliseconds timeout)
{
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] {
        return points[static_cast<int>(point)].parked;
    });
}

void
PreemptionInjector::release(hooks::YieldPoint point)
{
    std::lock_guard lock(mu);
    points[static_cast<int>(point)].releaseRequested = true;
    cv.notify_all();
}

void
PreemptionInjector::setRandomYield(uint64_t seed, uint32_t one_in)
{
    rngState.store(seed, std::memory_order_relaxed);
    yieldOneIn.store(one_in, std::memory_order_release);
}

uint64_t
PreemptionInjector::hits(hooks::YieldPoint point) const
{
    return hitCounts[static_cast<int>(point)].load(
        std::memory_order_relaxed);
}

void
PreemptionInjector::trampoline(hooks::YieldPoint point, void *self)
{
    static_cast<PreemptionInjector *>(self)->onHit(point);
}

void
PreemptionInjector::onHit(hooks::YieldPoint point)
{
    hitCounts[static_cast<int>(point)].fetch_add(
        1, std::memory_order_relaxed);

    if (armedMask.load(std::memory_order_acquire) & pointBit(point))
        parkSlow(point);

    const uint32_t one_in = yieldOneIn.load(std::memory_order_acquire);
    if (one_in) {
        const uint64_t tick =
            rngState.fetch_add(0x9e3779b97f4a7c15ull,
                               std::memory_order_relaxed);
        if (mix64(tick ^ uint64_t(static_cast<int>(point))) % one_in == 0)
            std::this_thread::yield();
    }
}

void
PreemptionInjector::parkSlow(hooks::YieldPoint point)
{
    PointState &pt = points[static_cast<int>(point)];
    std::unique_lock lock(mu);
    if (!pt.armed)
        return;  // trap consumed between the atomic check and here
    pt.armed = false;
    armedMask.fetch_and(~pointBit(point), std::memory_order_release);
    pt.parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return pt.releaseRequested; });
    pt.releaseRequested = false;
    pt.parked = false;
    cv.notify_all();
}

} // namespace btrace
