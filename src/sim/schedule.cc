#include "sim/schedule.h"

#include <algorithm>

#include "common/panic.h"

namespace btrace {

SliceSchedule
SliceSchedule::build(const Workload &wl, ReplayMode mode, double duration,
                     uint64_t seed, double slice_mean_sec)
{
    SliceSchedule s;
    s.perCore.resize(kCores);
    s.starts.resize(kCores);
    s.cursor.assign(kCores, 0);

    for (unsigned c = 0; c < kCores; ++c) {
        auto &slices = s.perCore[c];
        auto &idx = s.starts[c];

        if (mode == ReplayMode::CoreLevel) {
            const uint32_t tid = globalThreadId(uint16_t(c), 0);
            slices.push_back(Slice{0.0, duration * 2.0 + 1.0, tid});
            idx[tid].push_back(0.0);
            continue;
        }

        Prng rng(seed * 1000003ull + c * 7919ull + wl.seed);
        const uint32_t total = std::max<uint32_t>(1, wl.totalThreads[c]);
        const uint32_t active =
            std::max<uint32_t>(1, std::min(wl.activeThreads[c], total));

        // Working set of runnable threads, resampled every second.
        std::vector<uint32_t> working;
        double window_end = 0.0;
        auto resample = [&]() {
            working.clear();
            for (uint32_t k = 0; k < active; ++k) {
                // Distinctness is not essential for the model; a rare
                // duplicate only means a thread runs twice as often.
                working.push_back(uint32_t(rng.nextBounded(total)));
            }
            window_end += 1.0;
        };
        resample();

        double t = 0.0;
        while (t < duration) {
            if (t >= window_end)
                resample();
            double len = rng.exponential(slice_mean_sec);
            len = std::clamp(len, slice_mean_sec * 0.1,
                             slice_mean_sec * 10.0);
            const uint32_t local =
                working[rng.nextBounded(working.size())];
            const uint32_t tid = globalThreadId(uint16_t(c), local);
            const double end = std::min(t + len, duration * 2.0 + 1.0);
            slices.push_back(Slice{t, end, tid});
            idx[tid].push_back(t);
            t = end;
        }
        // Terminal slice so queries at the very end stay valid.
        if (!slices.empty()) {
            slices.back().end =
                std::max(slices.back().end, duration * 2.0 + 1.0);
        }
    }
    return s;
}

SliceSchedule::Running
SliceSchedule::runningAt(uint16_t core, double t) const
{
    const auto &slices = perCore.at(core);
    std::size_t &i = cursor[core];
    if (i >= slices.size() || slices[i].start > t)
        i = 0;  // non-monotonic query; restart the scan
    while (i + 1 < slices.size() && slices[i].end <= t)
        ++i;
    const Slice &s = slices[i];
    return Running{s.thread, s.end};
}

double
SliceSchedule::nextRunAfter(uint16_t core, uint32_t thread, double t) const
{
    const auto &idx = starts.at(core);
    const auto it = idx.find(thread);
    if (it == idx.end())
        return never;
    const auto &ts = it->second;
    const auto pos = std::upper_bound(ts.begin(), ts.end(), t);
    return pos == ts.end() ? never : *pos;
}

std::size_t
SliceSchedule::distinctThreads(uint16_t core) const
{
    return starts.at(core).size();
}

} // namespace btrace
