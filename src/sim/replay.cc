#include "sim/replay.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "baselines/bbq.h"
#include "baselines/ftrace_like.h"
#include "baselines/lttng_like.h"
#include "baselines/vtrace_like.h"
#include "common/prng.h"
#include "core/btrace.h"

namespace btrace {

namespace {

/** Per-core piecewise-constant burst modulation of the arrival rate. */
class BurstProfile
{
  public:
    BurstProfile(const Workload &wl, double duration, uint64_t seed)
        : bucketSec(0.5)
    {
        Prng rng(seed * 6364136223846793005ull + wl.seed + 99);
        const auto buckets =
            static_cast<std::size_t>(duration / bucketSec) + 2;
        factors.resize(kCores);
        for (unsigned c = 0; c < kCores; ++c) {
            factors[c].resize(buckets);
            for (auto &f : factors[c]) {
                f = rng.chance(wl.burstiness) ? wl.burstLowFactor : 1.0;
            }
        }
    }

    double
    factorAt(uint16_t core, double t) const
    {
        const auto b = static_cast<std::size_t>(t / bucketSec);
        const auto &f = factors[core];
        return f[std::min(b, f.size() - 1)];
    }

  private:
    double bucketSec;
    std::vector<std::vector<double>> factors;
};

/** Discrete simulation event. */
struct SimEv
{
    enum Kind { Arrival, Poke, Confirm, LeaseClose };

    double t = 0.0;
    uint64_t seq = 0;       //!< deterministic tie-break
    Kind kind = Arrival;
    uint16_t core = 0;
    uint32_t thread = 0;
    uint64_t stamp = 0;
    uint32_t payload = 0;
    double cost = 0.0;      //!< ns accumulated across attempts
    double arrivalT = 0.0;  //!< when the producer asked to record
    int attempts = 0;
    WriteTicket ticket;     //!< valid for Confirm only
    std::size_t leaseIdx = 0;  //!< graveyard slot, LeaseClose only
};

struct EvLater
{
    bool
    operator()(const SimEv &a, const SimEv &b) const
    {
        return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
};

} // namespace

ReplayResult
replay(Tracer &tracer, const Workload &wl, const ReplayOptions &opt)
{
    ReplayResult res;
    res.tracerName = tracer.name();
    res.workloadName = wl.name;
    res.capacityBytes = tracer.capacityBytes();

    const double duration =
        opt.durationSec > 0 ? opt.durationSec : wl.durationSec;
    // The paper's replay joins every producer thread before dumping,
    // so in-flight writes get to finish: allow stalled confirms a
    // generous flush window past the end of event generation.
    const double grace = duration + 2.0;

    Prng rng(opt.seed * 0x9e3779b97f4a7c15ull ^ (wl.seed << 17));
    const SliceSchedule schedule = SliceSchedule::build(
        wl, opt.mode, duration, opt.seed, opt.sliceMeanSec);
    const BurstProfile bursts(wl, duration, opt.seed);
    const CostModel &model = tracer.model();

    std::priority_queue<SimEv, std::vector<SimEv>, EvLater> heap;
    uint64_t seq = 0;
    uint64_t stamp_counter = 0;

    const double expected = wl.expectedBytes() * opt.rateScale /
                            (double(EntryLayout::normalHeaderBytes) +
                             wl.meanPayloadBytes());
    if (opt.keepProducedLog)
        res.produced.reserve(static_cast<std::size_t>(expected * 1.1) + 64);

    auto sample_payload = [&]() {
        return static_cast<uint32_t>(
            rng.heavyTail(wl.payloadLo, wl.payloadHi, wl.payloadShape));
    };

    auto push_arrival = [&](uint16_t core, double after) {
        const double rate = wl.ratePerSec[core] * opt.rateScale *
                            bursts.factorAt(core, after);
        if (rate <= 0.0)
            return;
        const double t = after + rng.exponential(1.0 / rate);
        if (t >= duration)
            return;
        SimEv ev;
        ev.t = t;
        ev.seq = ++seq;
        ev.kind = SimEv::Arrival;
        ev.core = core;
        heap.push(ev);
    };

    // The ground-truth log gains one entry per *arrival* (stamps stay
    // contiguous even for events still in flight at dump time); the
    // dropped flag is set later if the tracer sheds the event.
    auto log_produced = [&](uint64_t stamp, uint32_t bytes, double t,
                            uint16_t core, uint32_t thread) {
        res.producedBytes += double(bytes);
        if (opt.keepProducedLog) {
            res.produced.push_back(ProducedEvent{
                stamp, bytes, float(t), core, thread, false});
        }
    };

    auto mark_dropped = [&](uint64_t stamp) {
        ++res.drops;
        if (opt.keepProducedLog)
            res.produced[stamp - 1].dropped = true;
    };

    // Self-observation: replay drives allocate/confirm directly, so
    // feed the tracer-level observer (if attached) the same modeled
    // latencies that land in latencyNs — one hook for live and
    // replayed runs alike.
    auto observe_latency = [&](double cost_ns) {
        if (TracerObserver *o = tracer.attachedObserver())
            o->maybeRecordSample(cost_ns);
    };

    // Global FIFO of events waiting behind a Retry. Both tracers that
    // can return Retry (BBQ behind an unfinished block, BTrace with
    // every metadata block held) block *globally*, and the paper's
    // replay is closed-loop: stalled producers resume in arrival
    // order. An open-loop retry heap (or per-core queues) would
    // reorder or core-segregate the thundering herd and shred the
    // stamp space at overwrite boundaries.
    std::deque<SimEv> backlog;

    enum class WriteStatus { Done, Blocked };

    // Leased mode: one open lease per core, owned by the thread that
    // opened it. A thread handover with the lease still open is a
    // mid-lease preemption: the old owner keeps the close obligation
    // until its next slice, so the lease moves to a graveyard (stable
    // addresses — LeaseClose events index into it) and closes when
    // the owner resumes, or never, for a straggler past the grace
    // window (the destructor then closes it after the final dump,
    // exactly like a writer that never returned).
    struct CoreLeaseSlot
    {
        uint32_t owner = 0;
        Lease lease;
    };
    std::vector<CoreLeaseSlot> coreLeases(kCores);
    std::deque<Lease> graveyard;
    const auto payload_hint = static_cast<uint32_t>(
        wl.meanPayloadBytes());

    // Preemption check shared by both write paths: does the write
    // window survive the thread's scheduling slice? Backlog-delayed
    // events are exempt (see below). Returns the owner's resume time,
    // or a negative value when the write completes undisturbed.
    auto preempted_until = [&](const SimEv &ev, double window_ns) {
        if (opt.mode != ReplayMode::ThreadLevel ||
            ev.t != ev.arrivalT || tracer.disablesPreemption())
            return -1.0;
        const SliceSchedule::Running run =
            schedule.runningAt(ev.core, ev.t);
        const double window =
            window_ns * 1e-9 * opt.preemptionWindowBoost;
        if (run.thread != ev.thread || ev.t + window <= run.sliceEnd)
            return -1.0;
        double resume =
            schedule.nextRunAfter(ev.core, ev.thread, run.sliceEnd);
        resume = std::min(resume, run.sliceEnd + opt.stragglerResumeSec);
        if (rng.chance(opt.longStallProb))
            resume += rng.exponential(opt.longStallMeanSec);
        return resume;
    };

    // One leased write attempt: renew the core's lease as needed and
    // serve the entry from it.
    auto attempt_lease_write = [&](SimEv &ev) {
        auto &slot = coreLeases[ev.core];
        if (!slot.lease.closed() && slot.owner != ev.thread) {
            // The previous owner was descheduled holding the lease.
            ++res.leasesPreempted;
            graveyard.push_back(std::move(slot.lease));
            double resume =
                schedule.nextRunAfter(ev.core, slot.owner, ev.t);
            resume = std::min(resume, ev.t + opt.stragglerResumeSec);
            if (rng.chance(opt.longStallProb))
                resume += rng.exponential(opt.longStallMeanSec);
            // The straggler cutoff is relative to when the handover is
            // noticed, not the absolute grace deadline: a backlog-
            // dilated clock would otherwise declare *every* preempted
            // owner a straggler, and each unclosed lease wedges one
            // metadata block until the tracer deadlocks behind A
            // incomplete blocks. Only the long-stall tail (page
            // faults, compaction) may genuinely never return.
            if (resume <= std::max(grace, ev.t + (grace - duration))) {
                SimEv cl;
                cl.t = resume;
                cl.seq = ++seq;
                cl.kind = SimEv::LeaseClose;
                cl.leaseIdx = graveyard.size() - 1;
                heap.push(cl);
            }
        }
        for (int renewal = 0; renewal < 2; ++renewal) {
            if (slot.lease.closed() || slot.owner != ev.thread) {
                Lease l = tracer.lease(ev.core, ev.thread, payload_hint,
                                       opt.leaseEntries);
                if (!l.ok()) {
                    ++res.retries;
                    ev.cost += l.cost() + model.retryBackoff;
                    ev.attempts += 1;
                    return WriteStatus::Blocked;
                }
                ++res.leasesOpened;
                slot.owner = ev.thread;
                // The opening event pays the claim; followers pay
                // only the bump (their ticket cost).
                ev.cost += l.cost();
                slot.lease = std::move(l);
            }
            WriteTicket ticket = slot.lease.allocate(ev.payload);
            if (ticket.status == AllocStatus::Drop) {
                mark_dropped(ev.stamp);
                return WriteStatus::Done;
            }
            if (ticket.status == AllocStatus::Retry) {
                // Span (or fallback budget) exhausted: close, renew
                // once; a second failure means the tracer itself is
                // blocked.
                slot.lease.close();
                if (renewal == 1)
                    break;
                continue;
            }
            writeNormal(ticket.dst, ev.stamp, ev.core, ev.thread,
                        opt.category, ev.payload);
            const double copy_cost = model.copy(ticket.entrySize);
            double cost = ev.cost + ticket.cost + copy_cost;
            cost += (ev.t - ev.arrivalT) * 1e9;
            const double resume =
                preempted_until(ev, ticket.cost + copy_cost);
            if (resume >= 0.0) {
                ++res.preemptedWrites;
                if (resume > grace) {
                    // A straggler that never runs again: its slot stays
                    // a hole in the leased span (or an unconfirmed
                    // ticket on the fallback path), the block never
                    // completes and is sacrificed like one held by a
                    // preempted writer (§3.4). The auditor reconciles
                    // the leased deficit against leasedOutstanding.
                    ++res.unconfirmed;
                    return WriteStatus::Done;
                }
                if (ticket.leased) {
                    // The owner finishes the interrupted write on its
                    // next slice, and program order in the owner puts
                    // that before any close it issues — so the confirm
                    // always lands inside the lease. Counting it here
                    // keeps the span hole-free without a deferred
                    // event racing the graveyard close.
                    ticket.cost = 0.0;
                    slot.lease.confirm(ticket);
                    if (opt.keepLatencySamples)
                        res.latencyNs.add(cost);
                    observe_latency(cost);
                    return WriteStatus::Done;
                }
                SimEv conf;
                conf.t = resume;
                conf.seq = ++seq;
                conf.kind = SimEv::Confirm;
                conf.core = ev.core;
                conf.thread = ev.thread;
                conf.stamp = ev.stamp;
                conf.cost = cost;
                conf.ticket = ticket;
                heap.push(conf);
                return WriteStatus::Done;
            }
            ticket.cost = 0.0;
            slot.lease.confirm(ticket);
            cost += ticket.leased ? 0.0 : ticket.cost;
            if (opt.keepLatencySamples)
                res.latencyNs.add(cost);
            observe_latency(cost);
            return WriteStatus::Done;
        }
        ++res.retries;
        ev.cost += model.retryBackoff;
        ev.attempts += 1;
        return WriteStatus::Blocked;
    };

    // One write attempt: allocate, and on success write + (possibly
    // deferred) confirm.
    auto attempt_write = [&](SimEv &ev) {
        if (opt.leaseEntries > 0)
            return attempt_lease_write(ev);
        WriteTicket ticket =
            tracer.allocate(ev.core, ev.thread, ev.payload);
        double cost = ev.cost + ticket.cost;

        if (ticket.status == AllocStatus::Drop) {
            mark_dropped(ev.stamp);
            return WriteStatus::Done;
        }
        if (ticket.status == AllocStatus::Retry) {
            ++res.retries;
            ev.cost = cost + model.retryBackoff;
            ev.attempts += 1;
            return WriteStatus::Blocked;
        }

        writeNormal(ticket.dst, ev.stamp, ev.core, ev.thread,
                    opt.category, ev.payload);
        const double copy_cost = model.copy(ticket.entrySize);
        cost += copy_cost;
        // A producer stalled behind a blocked tracer experiences the
        // wait as recording latency (the paper measures wall time and
        // tames the outliers with the geometric mean).
        cost += (ev.t - ev.arrivalT) * 1e9;

        // Mid-write preemption: does the write window survive the
        // thread's scheduling slice? Backlog-delayed events are
        // exempt: a whole drained burst shares one service instant,
        // and flagging every burst write that lands near a slice end
        // would manufacture preemption cascades out of the time
        // collapse. A thread preempted mid-write stays *runnable*;
        // the scheduler gets back to it within tens of ms even if
        // the sampled working set would not pick it for a while, so
        // the resume delay is capped — except for the heavy tail of
        // genuine stalls (page faults, compaction, throttling).
        const double resume =
            preempted_until(ev, ticket.cost + copy_cost);
        if (resume >= 0.0) {
            ++res.preemptedWrites;
            if (resume > grace) {
                ++res.unconfirmed;  // run ends before it resumes
                return WriteStatus::Done;
            }
            SimEv conf;
            conf.t = resume;
            conf.seq = ++seq;
            conf.kind = SimEv::Confirm;
            conf.core = ev.core;
            conf.thread = ev.thread;
            conf.stamp = ev.stamp;
            conf.cost = cost;
            conf.ticket = ticket;
            heap.push(conf);
            return WriteStatus::Done;
        }

        ticket.cost = 0.0;
        tracer.confirm(ticket);
        cost += ticket.cost;
        if (opt.keepLatencySamples)
            res.latencyNs.add(cost);
        observe_latency(cost);
        return WriteStatus::Done;
    };

    // Drain the backlog in FIFO order until it blocks again (then
    // schedule a poke) or empties.
    double blocked_since = -1.0;
    auto service = [&](double now) {
        res.maxBacklog = std::max(res.maxBacklog, backlog.size());
        while (!backlog.empty()) {
            SimEv &head = backlog.front();
            head.t = now;
            if (head.attempts > 20000) {
                // Livelock guard: the tracer never unblocked; shed the
                // event so the run terminates.
                mark_dropped(head.stamp);
                backlog.pop_front();
                continue;
            }
            if (attempt_write(head) == WriteStatus::Blocked) {
                // Exponential-ish backoff bounds the poke rate while
                // the queue stays blocked.
                const double backoff = std::min(
                    opt.retryDelaySec * double(1 + head.attempts / 4),
                    1e-3);
                SimEv poke;
                poke.t = now + backoff;
                poke.seq = ++seq;
                poke.kind = SimEv::Poke;
                heap.push(poke);
                if (blocked_since < 0)
                    blocked_since = now;
                return;
            }
            backlog.pop_front();
        }
        if (blocked_since >= 0) {
            res.blockedSec += now - blocked_since;
            blocked_since = -1.0;
        }
    };

    for (unsigned c = 0; c < kCores; ++c)
        push_arrival(uint16_t(c), 0.0);

    while (!heap.empty()) {
        SimEv ev = heap.top();
        heap.pop();

        switch (ev.kind) {
          case SimEv::Arrival: {
            push_arrival(ev.core, ev.t);
            const SliceSchedule::Running run =
                schedule.runningAt(ev.core, ev.t);
            ev.thread = run.thread;
            ev.stamp = ++stamp_counter;
            ev.arrivalT = ev.t;
            ev.payload = sample_payload();
            log_produced(ev.stamp,
                         uint32_t(EntryLayout::normalSize(ev.payload)),
                         ev.t, ev.core, ev.thread);
            const bool idle = backlog.empty();
            backlog.push_back(ev);
            if (idle)
                service(ev.t);
            // Otherwise a poke for the blocked head is already
            // pending; this event waits its turn in FIFO order.
            break;
          }
          case SimEv::Poke: {
            service(ev.t);
            break;
          }
          case SimEv::Confirm: {
            ev.ticket.cost = 0.0;
            tracer.confirm(ev.ticket);
            if (opt.keepLatencySamples)
                res.latencyNs.add(ev.cost + ev.ticket.cost);
            observe_latency(ev.cost + ev.ticket.cost);
            break;
          }
          case SimEv::LeaseClose: {
            // The preempted owner got its slice back and returned the
            // lease it was descheduled with.
            graveyard[ev.leaseIdx].close();
            break;
          }
        }
    }

    // The replay joins every producer before dumping, so threads
    // still owning their core's lease return it now. Graveyard leases
    // whose owner never resumed within the grace window stay open
    // across the dump — their blocks read as in-flight — and are
    // closed by destruction afterwards.
    for (CoreLeaseSlot &slot : coreLeases)
        slot.lease.close();

    res.dump = tracer.dump();
    return res;
}

std::unique_ptr<Tracer>
makeTracer(TracerKind kind, const TracerFactoryOptions &opt)
{
    const CostModel &model = opt.cost ? *opt.cost : CostModel::def();
    switch (kind) {
      case TracerKind::BTrace: {
        BTraceConfig cfg;
        cfg.blockSize = opt.blockSize;
        cfg.cores = opt.cores;
        cfg.activeBlocks =
            opt.activeBlocks ? opt.activeBlocks : 16 * opt.cores;
        // Round to the nearest multiple of A so small capacities do
        // not silently lose a large fraction of the request.
        const std::size_t raw = opt.capacityBytes / opt.blockSize;
        const std::size_t a = cfg.activeBlocks;
        cfg.numBlocks = std::max(a, (raw + a / 2) / a * a);
        if (opt.maxBlocks) {
            cfg.maxBlocks = std::max(cfg.numBlocks,
                                     opt.maxBlocks - opt.maxBlocks % a);
        }
        if (opt.storage != nullptr)
            cfg.storage = *opt.storage;
        cfg.arenaPath = opt.arenaPath;
        return std::make_unique<BTrace>(cfg, model);
      }
      case TracerKind::Bbq: {
        BbqConfig cfg;
        cfg.blockSize = opt.blockSize;
        cfg.numBlocks = opt.capacityBytes / opt.blockSize;
        cfg.cores = opt.cores;
        return std::make_unique<Bbq>(cfg, model);
      }
      case TracerKind::Ftrace: {
        FtraceConfig cfg;
        cfg.capacityBytes = opt.capacityBytes;
        cfg.cores = opt.cores;
        return std::make_unique<FtraceLike>(cfg, model);
      }
      case TracerKind::Lttng: {
        LttngConfig cfg;
        cfg.capacityBytes = opt.capacityBytes;
        cfg.cores = opt.cores;
        cfg.subBuffers = opt.subBuffers;
        return std::make_unique<LttngLike>(cfg, model);
      }
      case TracerKind::Vtrace: {
        VtraceConfig cfg;
        cfg.capacityBytes = opt.capacityBytes;
        cfg.expectedThreads = opt.expectedThreads;
        return std::make_unique<VtraceLike>(cfg, model);
      }
    }
    BTRACE_PANIC("unknown tracer kind");
}

const std::vector<TracerKind> &
allTracerKinds()
{
    static const std::vector<TracerKind> kinds = {
        TracerKind::BTrace, TracerKind::Bbq, TracerKind::Ftrace,
        TracerKind::Lttng, TracerKind::Vtrace};
    return kinds;
}

std::string
tracerKindName(TracerKind kind)
{
    switch (kind) {
      case TracerKind::BTrace: return "BTrace";
      case TracerKind::Bbq: return "BBQ";
      case TracerKind::Ftrace: return "ftrace";
      case TracerKind::Lttng: return "LTTng";
      case TracerKind::Vtrace: return "VTrace";
    }
    return "?";
}

} // namespace btrace
