/**
 * @file
 * Deterministic virtual-time CPU schedule for replay.
 *
 * The paper replays traces in two modes (§5): *core-level* (one
 * producing thread pinned per core) and *thread-level* (as many
 * threads per core as the recorded trace shows, §2.2 Observation 2).
 * This module materializes a per-core timeline of scheduling slices:
 * which thread runs when, for how long. The replay engine uses it to
 * attribute events to threads and — crucially — to model a thread
 * being preempted *between* reserving trace space and confirming it.
 *
 * Thread-level schedules model the working-set churn of Fig 6: each
 * one-second window samples a set of `activeThreads` runnable threads
 * out of `totalThreads` distinct ones, and slices round among them
 * with exponentially distributed lengths.
 */

#ifndef BTRACE_SIM_SCHEDULE_H
#define BTRACE_SIM_SCHEDULE_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/prng.h"
#include "common/test_hooks.h"
#include "workloads/workload.h"

namespace btrace {

/** Replay granularity (§5, "Replaying setup"). */
enum class ReplayMode
{
    CoreLevel,   //!< one producer thread per core; no preemption
    ThreadLevel, //!< full thread pools with context switches
};

/** Virtual-time slice timeline for all cores of one replay. */
class SliceSchedule
{
  public:
    /** The thread running on a core at some instant. */
    struct Running
    {
        uint32_t thread;   //!< globally unique thread id
        double sliceEnd;   //!< when its current slice expires
    };

    static constexpr double never = std::numeric_limits<double>::infinity();

    /** Build the schedule for @p wl over @p duration seconds. */
    static SliceSchedule build(const Workload &wl, ReplayMode mode,
                               double duration, uint64_t seed,
                               double slice_mean_sec = 1e-3);

    /**
     * Thread running on @p core at time @p t. Queries must be
     * monotonically non-decreasing per core (amortized O(1)).
     */
    Running runningAt(uint16_t core, double t) const;

    /** Start of @p thread's next slice strictly after @p t (or never). */
    double nextRunAfter(uint16_t core, uint32_t thread, double t) const;

    /** Number of distinct threads that ever run on @p core. */
    std::size_t distinctThreads(uint16_t core) const;

    /** Globally unique id of local thread @p local on @p core. */
    static uint32_t
    globalThreadId(uint16_t core, uint32_t local)
    {
        return uint32_t(core) * 100000u + local;
    }

  private:
    struct Slice
    {
        double start;
        double end;
        uint32_t thread;
    };

    std::vector<std::vector<Slice>> perCore;
    std::vector<std::unordered_map<uint32_t, std::vector<double>>> starts;
    mutable std::vector<std::size_t> cursor;  //!< monotonic query index
};

/**
 * Drives the BTRACE_TEST_YIELD hook points (common/test_hooks.h) to
 * force specific interleavings of BTrace's lock-free algorithms.
 *
 * Two modes, freely combined:
 *
 *  - **Targeted parking.** armPark(point) makes the *next* thread that
 *    reaches the point block inside the hook; the test observes it via
 *    awaitParked(), mutates shared state from other threads to build
 *    the adversarial interleaving, then release()s it. One-shot: later
 *    arrivals pass through, so helper threads never trip over a
 *    consumed trap.
 *
 *  - **Seeded random yields.** setRandomYield(seed, one_in) makes
 *    every hook arrival call std::this_thread::yield() with
 *    probability 1/one_in, driven by a deterministic per-arrival hash.
 *    This concentrates scheduler churn exactly on the critical
 *    windows — far more effective than uniform preemption and
 *    reproducible across runs of the same build.
 *
 * The constructor installs the process-global hook and the destructor
 * removes it; create the injector before spawning tracer threads and
 * destroy it after joining them. Only one instance may exist at a
 * time.
 */
class PreemptionInjector
{
  public:
    PreemptionInjector();
    ~PreemptionInjector();

    PreemptionInjector(const PreemptionInjector &) = delete;
    PreemptionInjector &operator=(const PreemptionInjector &) = delete;

    /** Trap the next arrival at @p point (one-shot). */
    void armPark(hooks::YieldPoint point);

    /** Cancel a not-yet-sprung trap; no-op if already consumed. */
    void disarm(hooks::YieldPoint point);

    /** Wait until a thread is parked at @p point; false on timeout. */
    bool awaitParked(hooks::YieldPoint point,
                     std::chrono::milliseconds timeout =
                         std::chrono::milliseconds(10000));

    /** Let the thread parked at @p point continue. */
    void release(hooks::YieldPoint point);

    /** Yield with probability 1/@p one_in at every hook (0 = off). */
    void setRandomYield(uint64_t seed, uint32_t one_in);

    /** Number of times any thread reached @p point. */
    uint64_t hits(hooks::YieldPoint point) const;

  private:
    static void trampoline(hooks::YieldPoint point, void *self);
    void onHit(hooks::YieldPoint point);
    void parkSlow(hooks::YieldPoint point);

    struct PointState
    {
        bool armed = false;
        bool parked = false;
        bool releaseRequested = false;
    };

    mutable std::mutex mu;
    std::condition_variable cv;
    std::array<PointState, hooks::yieldPointCount> points{};
    std::array<std::atomic<uint64_t>, hooks::yieldPointCount> hitCounts{};
    std::atomic<uint32_t> armedMask{0};
    std::atomic<uint32_t> yieldOneIn{0};
    std::atomic<uint64_t> rngState{0};
};

} // namespace btrace

#endif // BTRACE_SIM_SCHEDULE_H
