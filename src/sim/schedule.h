/**
 * @file
 * Deterministic virtual-time CPU schedule for replay.
 *
 * The paper replays traces in two modes (§5): *core-level* (one
 * producing thread pinned per core) and *thread-level* (as many
 * threads per core as the recorded trace shows, §2.2 Observation 2).
 * This module materializes a per-core timeline of scheduling slices:
 * which thread runs when, for how long. The replay engine uses it to
 * attribute events to threads and — crucially — to model a thread
 * being preempted *between* reserving trace space and confirming it.
 *
 * Thread-level schedules model the working-set churn of Fig 6: each
 * one-second window samples a set of `activeThreads` runnable threads
 * out of `totalThreads` distinct ones, and slices round among them
 * with exponentially distributed lengths.
 */

#ifndef BTRACE_SIM_SCHEDULE_H
#define BTRACE_SIM_SCHEDULE_H

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/prng.h"
#include "workloads/workload.h"

namespace btrace {

/** Replay granularity (§5, "Replaying setup"). */
enum class ReplayMode
{
    CoreLevel,   //!< one producer thread per core; no preemption
    ThreadLevel, //!< full thread pools with context switches
};

/** Virtual-time slice timeline for all cores of one replay. */
class SliceSchedule
{
  public:
    /** The thread running on a core at some instant. */
    struct Running
    {
        uint32_t thread;   //!< globally unique thread id
        double sliceEnd;   //!< when its current slice expires
    };

    static constexpr double never = std::numeric_limits<double>::infinity();

    /** Build the schedule for @p wl over @p duration seconds. */
    static SliceSchedule build(const Workload &wl, ReplayMode mode,
                               double duration, uint64_t seed,
                               double slice_mean_sec = 1e-3);

    /**
     * Thread running on @p core at time @p t. Queries must be
     * monotonically non-decreasing per core (amortized O(1)).
     */
    Running runningAt(uint16_t core, double t) const;

    /** Start of @p thread's next slice strictly after @p t (or never). */
    double nextRunAfter(uint16_t core, uint32_t thread, double t) const;

    /** Number of distinct threads that ever run on @p core. */
    std::size_t distinctThreads(uint16_t core) const;

    /** Globally unique id of local thread @p local on @p core. */
    static uint32_t
    globalThreadId(uint16_t core, uint32_t local)
    {
        return uint32_t(core) * 100000u + local;
    }

  private:
    struct Slice
    {
        double start;
        double end;
        uint32_t thread;
    };

    std::vector<std::vector<Slice>> perCore;
    std::vector<std::unordered_map<uint32_t, std::vector<double>>> starts;
    mutable std::vector<std::size_t> cursor;  //!< monotonic query index
};

} // namespace btrace

#endif // BTRACE_SIM_SCHEDULE_H
