/**
 * @file
 * Deterministic trace-replay engine (§5 "Replaying setup").
 *
 * Drives any Tracer with a synthetic Workload on virtual time: events
 * arrive per core as a modulated Poisson process, are attributed to
 * the thread the SliceSchedule has running, and are written through
 * the two-phase allocate/confirm interface. A write whose modeled
 * duration crosses the end of the thread's slice is *preempted
 * mid-write*: its confirm is deferred until the thread's next slice —
 * reproducing the oversubscription stress of §2.2 that causes BBQ to
 * block, LTTng to drop, and BTrace to skip.
 *
 * Every event carries a unique monotonically increasing logic stamp
 * (as in the paper) so the analysis layer can identify exactly which
 * events were retained, overwritten, or dropped.
 *
 * The engine runs on one real thread regardless of the number of
 * virtual cores, which makes every run bit-for-bit reproducible;
 * real-thread concurrency is exercised separately by the stress tests
 * and wall-clock microbenches.
 */

#ifndef BTRACE_SIM_REPLAY_H
#define BTRACE_SIM_REPLAY_H

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/storage_backend.h"
#include "sim/schedule.h"
#include "trace/tracer.h"
#include "workloads/workload.h"

namespace btrace {

/** Knobs of one replay run. */
struct ReplayOptions
{
    ReplayMode mode = ReplayMode::ThreadLevel;
    double durationSec = 0.0;     //!< 0 = workload default
    double rateScale = 1.0;       //!< scales all per-core rates
    uint64_t seed = 1;
    double sliceMeanSec = 1e-3;   //!< scheduler timeslice mean
    /**
     * Widens the mid-write preemption window beyond the pure write
     * cost: a write also stays open across IRQs, page faults, and
     * cache misses, which the ns-level cost model does not include.
     */
    double preemptionWindowBoost = 10.0;
    double retryDelaySec = 1e-6;  //!< spin-retry interval after Retry
    /**
     * Upper bound on how long a *runnable* preempted mid-write thread
     * stays off CPU: the scheduler cycles ~30 runnable threads per
     * core at millisecond slices (Fig 6), so ~100 ms even when the
     * sampled working set would not pick the thread for much longer.
     */
    double stragglerResumeSec = 0.12;
    /**
     * Heavy tail of mid-write stalls: occasionally the preempted
     * writer is not merely descheduled but stuck for hundreds of ms
     * (page fault on a compressed/zram page, memory-compaction stall,
     * cgroup throttling — everyday events on loaded phones). These
     * long holds are what force LTTng to drop the newest data and BBQ
     * to block (§2.2); BTrace skips past them (§3.4).
     */
    double longStallProb = 0.10;
    double longStallMeanSec = 0.3;
    uint16_t category = 0;        //!< category tag stored in entries
    bool keepLatencySamples = true;
    bool keepProducedLog = true;
    /**
     * Entries per thread-local lease (Tracer::lease); 0 replays
     * through the single-entry allocate/confirm path. With leasing, a
     * producer preempted while holding an open lease keeps the lease
     * open until its next slice (or forever, for a straggler that
     * never resumes) — the mid-lease analogue of a mid-write
     * preemption, and the case the revocation accounting exists for.
     */
    uint32_t leaseEntries = 0;
};

/** Ground-truth record of one produced (attempted) event. */
struct ProducedEvent
{
    uint64_t stamp;
    uint32_t bytes;    //!< full entry size
    float time;        //!< virtual seconds
    uint16_t core;
    uint32_t thread;
    bool dropped;      //!< shed by the tracer (never written)
};

/** Everything a bench needs from one replay run. */
struct ReplayResult
{
    std::string tracerName;
    std::string workloadName;
    std::vector<ProducedEvent> produced;
    Dump dump;
    SampleSet latencyNs;          //!< per successful record, model ns
    uint64_t drops = 0;
    uint64_t retries = 0;
    uint64_t preemptedWrites = 0;
    uint64_t unconfirmed = 0;     //!< writes whose thread never resumed
    uint64_t leasesOpened = 0;    //!< leases granted (leaseEntries > 0)
    uint64_t leasesPreempted = 0; //!< owner descheduled mid-lease
    double producedBytes = 0.0;
    std::size_t capacityBytes = 0;
    double blockedSec = 0.0;      //!< virtual time with a stalled queue
    std::size_t maxBacklog = 0;   //!< worst stalled-producer queue
};

/** Replay @p wl against @p tracer and collect the results. */
ReplayResult replay(Tracer &tracer, const Workload &wl,
                    const ReplayOptions &opt = {});

/** The five tracers of the evaluation. */
enum class TracerKind
{
    BTrace,
    Bbq,
    Ftrace,
    Lttng,
    Vtrace,
};

/** Construction parameters shared across tracer kinds. */
struct TracerFactoryOptions
{
    std::size_t capacityBytes = 12u << 20;  //!< §5: 12 MB per tracer
    unsigned cores = kCores;
    std::size_t blockSize = 4096;           //!< §5: one page per block
    std::size_t activeBlocks = 0;           //!< 0 = 16 x cores (§5.1)
    std::size_t maxBlocks = 0;              //!< BTrace resize ceiling
    unsigned expectedThreads = 4000;        //!< VTrace provisioning
    unsigned subBuffers = 8;                //!< LTTng sub-buffers/core
    const CostModel *cost = nullptr;        //!< null = CostModel::def()
    /**
     * BTrace only: storage backend and (file kind) arena path. Null
     * storage inherits the build default (BTRACE_DEFAULT_BACKEND);
     * baselines always use private memory.
     */
    const StorageKind *storage = nullptr;
    std::string arenaPath;
};

/** Instantiate a tracer with the shared evaluation geometry. */
std::unique_ptr<Tracer> makeTracer(TracerKind kind,
                                   const TracerFactoryOptions &opt = {});

/** All kinds, Table 2 row order (BTrace first). */
const std::vector<TracerKind> &allTracerKinds();

/** Display name ("BTrace", "BBQ", "ftrace", "LTTng", "VTrace"). */
std::string tracerKindName(TracerKind kind);

} // namespace btrace

#endif // BTRACE_SIM_REPLAY_H
