#include "baselines/ftrace_like.h"

namespace btrace {

FtraceLike::FtraceLike(const FtraceConfig &config, const CostModel &model)
    : Tracer(model), cfg(config),
      perCore((config.capacityBytes / config.cores) & ~std::size_t(7))
{
    BTRACE_ASSERT(cfg.cores >= 1, "need at least one core");
    BTRACE_ASSERT(perCore >= 4096, "per-core ring too small");
    rings.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c)
        rings.push_back(std::make_unique<CoreRing>(perCore));
}

std::size_t
FtraceLike::capacityBytes() const
{
    return perCore * cfg.cores;
}

WriteTicket
FtraceLike::allocate(uint16_t core, uint32_t thread, uint32_t payload_len)
{
    BTRACE_DASSERT(core < cfg.cores, "core id out of range");
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));

    WriteTicket ticket;
    ticket.core = core;
    ticket.thread = thread;
    // preempt_disable + timestamp + local-CPU reserve (two local
    // atomics in the kernel implementation) + bookkeeping.
    ticket.cost = costs.preemptToggle + costs.tscRead +
                  2 * costs.atomicLocal + costs.setupOverhead;

    CoreRing &cr = *rings[core];
    while (cr.busy.test_and_set(std::memory_order_acquire))
        ; // only contended if the harness violates core exclusivity

    ticket.dst = cr.ring.reserve(need);
    ticket.entrySize = need;
    ticket.handle.slot = core;
    ticket.status = AllocStatus::Ok;
    return ticket;
}

void
FtraceLike::confirm(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok, "confirm without Ok");
    CoreRing &cr = *rings[ticket.handle.slot];
    cr.busy.clear(std::memory_order_release);
    ticket.cost += costs.atomicLocal;  // commit counter update
}

Dump
FtraceLike::dump()
{
    Dump out;
    for (auto &crp : rings) {
        CoreRing &cr = *crp;
        while (cr.busy.test_and_set(std::memory_order_acquire))
            ;
        cr.ring.collect(out.entries);
        cr.busy.clear(std::memory_order_release);
    }
    return out;
}

} // namespace btrace
