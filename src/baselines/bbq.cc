#include "baselines/bbq.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace btrace {

namespace {

uint64_t
loadSharedWord(const uint8_t *src)
{
    return std::atomic_ref<const uint64_t>(
               *reinterpret_cast<const uint64_t *>(src))
        .load(std::memory_order_relaxed);
}

} // namespace

Bbq::Bbq(const BbqConfig &config, const CostModel &model)
    : Tracer(model), cfg(config), cap(config.blockSize),
      n(config.numBlocks), data(config.numBlocks * config.blockSize),
      meta(config.numBlocks)
{
    BTRACE_ASSERT(cap >= 64 && cap % 8 == 0, "bad block size");
    BTRACE_ASSERT(n >= 2, "need at least two blocks");

    // Round 0 is a synthetic complete round so the first advancement
    // per block needs no special case (same trick as BTrace).
    for (auto &m : meta) {
        m.allocated.store(RndPos::pack(0, uint32_t(cap)),
                          std::memory_order_relaxed);
        m.confirmed.store(RndPos::pack(0, uint32_t(cap)),
                          std::memory_order_relaxed);
    }
    // Pre-open the block at the initial head position (round 1).
    writeBlockHeader(blockData(0), n);
    meta[0].allocated.store(
        RndPos::pack(1, EntryLayout::blockHeaderBytes),
        std::memory_order_relaxed);
    meta[0].confirmed.store(
        RndPos::pack(1, EntryLayout::blockHeaderBytes),
        std::memory_order_relaxed);
    head->store(n, std::memory_order_release);
}

std::size_t
Bbq::capacityBytes() const
{
    return n * cap;
}

std::size_t
Bbq::recentDistinctCores() const
{
    uint64_t mask = 0;
    for (const auto &slot : recentCores) {
        const uint16_t v = slot.load(std::memory_order_relaxed);
        if (v)
            mask |= uint64_t(1) << (v - 1) % 64;
    }
    return std::size_t(__builtin_popcountll(mask));
}

WriteTicket
Bbq::allocate(uint16_t core, uint32_t thread, uint32_t payload_len)
{
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));
    BTRACE_DASSERT(need <= cap - EntryLayout::blockHeaderBytes,
                   "entry larger than a block");

    WriteTicket ticket;
    ticket.core = core;
    ticket.thread = thread;
    ticket.cost = costs.tscRead + costs.setupOverhead;

    for (int attempt = 0; attempt < 64; ++attempt) {
        const uint64_t hp = head->load(std::memory_order_acquire);
        const uint64_t blk_idx = hp % n;
        const auto rnd = static_cast<uint32_t>(hp / n);
        MetadataBlock &m = meta[blk_idx];

        // Guard the fetch_add with a plain load: once the block is
        // exhausted, further unconditional adds would only pump the
        // Pos field towards a 32-bit overflow while the head is
        // blocked behind an unfinished block.
        const RndPos pre = m.loadAllocated(std::memory_order_relaxed);
        if (pre.rnd != rnd || pre.pos >= cap) {
            if (pre.rnd >= rnd && !tryAdvanceHead(hp, ticket.cost)) {
                ticket.status = AllocStatus::Retry;
                return ticket;
            }
            continue;
        }

        const RndPos old = RndPos::unpack(m.allocated.fetch_add(
            need, std::memory_order_acq_rel));
        // The Allocated word of the *one* current block is hammered by
        // every core in the system: charge shared-line contention for
        // each distinct core recently on the line, plus the in-flight
        // writers still holding unconfirmed space.
        recentCores[recentIdx.fetch_add(1, std::memory_order_relaxed) %
                    recentWindow]
            .store(core + 1, std::memory_order_relaxed);
        const std::size_t contenders =
            recentDistinctCores() +
            std::size_t(inflight->load(std::memory_order_relaxed));
        ticket.cost += costs.atomicShared +
                       costs.contention(contenders > 0 ? contenders - 1
                                                       : 0);

        if (old.rnd == rnd) {
            if (old.pos + need <= cap) {
                BTRACE_ASSERT(blk_idx * cap + old.pos + need <=
                              data.size(), "BBQ grant out of range");
                ticket.dst = blockData(blk_idx) + old.pos;
                ticket.entrySize = need;
                ticket.handle.slot = static_cast<uint32_t>(blk_idx);
                ticket.status = AllocStatus::Ok;
                inflight->fetch_add(1, std::memory_order_relaxed);
                return ticket;
            }
            if (old.pos < cap) {
                const auto gap = static_cast<uint32_t>(cap - old.pos);
                writeDummy(blockData(blk_idx) + old.pos, gap);
                m.confirmed.fetch_add(gap, std::memory_order_acq_rel);
                ticket.cost += costs.atomicShared + costs.copy(8);
            }
            if (!tryAdvanceHead(hp, ticket.cost)) {
                ticket.status = AllocStatus::Retry;
                return ticket;  // blocked behind an unfinished block
            }
            continue;
        }

        // Stale reservation into a newer round of this block: honour
        // the byte-accounting invariant with a dummy fill.
        if (old.rnd > rnd && old.pos < cap) {
            const auto claim = static_cast<uint32_t>(
                std::min<uint64_t>(need, cap - old.pos));
            writeDummy(blockData(blk_idx) + old.pos, claim);
            m.confirmed.fetch_add(claim, std::memory_order_acq_rel);
            ticket.cost += costs.atomicShared + costs.copy(8);
        }
    }

    ticket.status = AllocStatus::Retry;
    return ticket;
}

void
Bbq::confirm(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok, "confirm without Ok");
    meta[ticket.handle.slot].confirmed.fetch_add(ticket.entrySize,
                                            std::memory_order_acq_rel);
    inflight->fetch_sub(1, std::memory_order_relaxed);
    ticket.cost += costs.atomicShared;
}

bool
Bbq::tryAdvanceHead(uint64_t head_pos, double &cost)
{
    const uint64_t next = head_pos + 1;
    const uint64_t blk_idx = next % n;
    const auto next_rnd = static_cast<uint32_t>(next / n);
    MetadataBlock &m = meta[blk_idx];

    uint64_t cw = m.confirmed.load(std::memory_order_acquire);
    const RndPos conf = RndPos::unpack(cw);

    if (conf.rnd >= next_rnd) {
        // Someone already prepared (or passed) this block; just help
        // the head along.
        uint64_t expected = head_pos;
        head->compare_exchange_strong(expected, next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
        cost += costs.atomicShared;
        return true;
    }

    if (!(conf.rnd == next_rnd - 1 && conf.pos == cap)) {
        // Overwrite mode must wait for the oldest block to be fully
        // confirmed: a preempted writer blocks the whole queue.
        blocked.fetch_add(1, std::memory_order_relaxed);
        cost += costs.retryBackoff;
        return false;
    }

    if (m.confirmed.compare_exchange_strong(cw, RndPos::pack(next_rnd, 0),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        writeBlockHeader(blockData(blk_idx), next);
        uint64_t aw = m.allocated.load(std::memory_order_acquire);
        while (!m.allocated.compare_exchange_weak(
                   aw, RndPos::pack(next_rnd,
                                    EntryLayout::blockHeaderBytes),
                   std::memory_order_acq_rel, std::memory_order_acquire)) {
            cost += costs.retryBackoff;
        }
        m.confirmed.fetch_add(EntryLayout::blockHeaderBytes,
                              std::memory_order_acq_rel);
        cost += costs.atomicShared * 3 + costs.copy(16);
    }

    uint64_t expected = head_pos;
    head->compare_exchange_strong(expected, next,
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
    cost += costs.atomicShared;
    return true;
}

Dump
Bbq::dump()
{
    Dump out;
    const uint64_t hp = head->load(std::memory_order_acquire);
    const uint64_t window_end = hp + 1;
    const uint64_t window_start = window_end > n ? window_end - n : 0;

    std::vector<uint8_t> scratch(cap);
    for (uint64_t blk_idx = 0; blk_idx < n; ++blk_idx) {
        const uint8_t *src = blockData(blk_idx);
        const uint64_t word0 = loadSharedWord(src);
        if (!Descriptor::validMagic(word0))
            continue;
        if (Descriptor::unpack(word0).type != EntryType::BlockHeader)
            continue;
        const uint64_t q = loadSharedWord(src + 8);
        if (q < window_start || q >= window_end)
            continue;

        const auto rnd = static_cast<uint32_t>(q / n);
        const RndPos conf = meta[blk_idx].loadConfirmed();
        std::size_t readable = 0;
        if (conf.rnd == rnd) {
            if (conf.pos == cap) {
                readable = cap;
            } else {
                const RndPos alloc = meta[blk_idx].loadAllocated();
                if (alloc.rnd == rnd && alloc.pos == conf.pos) {
                    readable = conf.pos;
                } else {
                    ++out.unreadableBlocks;
                    continue;
                }
            }
        } else {
            continue;
        }

        for (std::size_t w = 0; w < readable; w += 8) {
            const uint64_t word = loadSharedWord(src + w);
            std::memcpy(scratch.data() + w, &word, 8);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (loadSharedWord(src + 8) != q) {
            ++out.abandonedBlocks;
            continue;
        }

        EntryCursor cursor(scratch.data() + EntryLayout::blockHeaderBytes,
                           readable - EntryLayout::blockHeaderBytes);
        EntryView view;
        bool bad = false;
        std::vector<DumpEntry> parsed;
        while (cursor.next(view)) {
            if (view.type != EntryType::Normal)
                continue;
            parsed.push_back(DumpEntry{view.stamp, view.size, view.core,
                                       view.thread, view.category,
                                       view.payloadOk});
        }
        bad = cursor.malformed();
        if (bad) {
            ++out.abandonedBlocks;
            continue;
        }
        out.entries.insert(out.entries.end(), parsed.begin(),
                           parsed.end());
    }
    return out;
}

} // namespace btrace
