/**
 * @file
 * BBQ-style global buffer baseline (Wang et al., USENIX ATC'22), in
 * overwrite mode — the paper's "ideal retention, worst latency"
 * comparison point (Fig 1, Table 1/2).
 *
 * One ring of fixed-size blocks is shared by *all* cores: every
 * producer reserves space in the single current block with a
 * fetch_add on a line that ping-pongs across the whole SoC. Retention
 * is near-perfect (the buffer behaves like one global FIFO), but:
 *
 *  - every reservation pays cross-core contention, and
 *  - when the ring wraps onto a block that still has unconfirmed
 *    entries (a preempted writer), all producers must wait — the
 *    "Blocking" availability of Table 1.
 */

#ifndef BTRACE_BASELINES_BBQ_H
#define BTRACE_BASELINES_BBQ_H

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.h"
#include "core/metadata.h"
#include "trace/tracer.h"

namespace btrace {

/** Configuration of the BBQ baseline. */
struct BbqConfig
{
    std::size_t blockSize = 4096;
    std::size_t numBlocks = 3072;
    unsigned cores = 12;
};

/** Global block-based bounded queue in overwrite mode. */
class Bbq : public Tracer
{
  public:
    explicit Bbq(const BbqConfig &config,
                 const CostModel &model = CostModel::def());

    std::string name() const override { return "BBQ"; }
    std::size_t capacityBytes() const override;

    WriteTicket allocate(uint16_t core, uint32_t thread,
                         uint32_t payload_len) override;
    void confirm(WriteTicket &ticket) override;
    Dump dump() override;

    /** Times producers found the ring blocked by an unfinished block. */
    uint64_t blockedCount() const
    {
        return blocked.load(std::memory_order_relaxed);
    }

  private:
    uint8_t *blockData(uint64_t phys) { return data.data() + phys * cap; }

    /** Move the shared head to position @p from + 1 if possible. */
    bool tryAdvanceHead(uint64_t head_pos, double &cost);

    /**
     * Contention proxy: the cache line holding the current block's
     * Allocated word bounces between every core that writes. We track
     * the cores behind the last few reservations; the number of
     * distinct ones approximates the set of cores ping-ponging the
     * line right now (works identically under deterministic replay
     * and real threads).
     */
    std::size_t recentDistinctCores() const;

    BbqConfig cfg;
    std::size_t cap;
    std::size_t n;

    std::vector<uint8_t> data;
    std::vector<MetadataBlock> meta;          //!< one per block
    CacheAligned<std::atomic<uint64_t>> head; //!< global block position
    CacheAligned<std::atomic<uint64_t>> inflight; //!< concurrent writers
    std::atomic<uint64_t> blocked{0};

    static constexpr std::size_t recentWindow = 16;
    std::array<std::atomic<uint16_t>, recentWindow> recentCores{};
    std::atomic<uint64_t> recentIdx{0};
};

} // namespace btrace

#endif // BTRACE_BASELINES_BBQ_H
