/**
 * @file
 * VampirTrace-like baseline: one private buffer per thread (§2.2).
 *
 * Per-thread buffers avoid all synchronization on the write path, but
 * the fixed total capacity must be split across every thread that ever
 * traces. With the hundreds of threads per core that smartphones run
 * (Fig 6), each thread's slice is tiny, so utilization collapses to
 * ~1/T and retained traces shatter into per-thread fragments
 * (Table 1/2: worst latest-fragment and loss results).
 */

#ifndef BTRACE_BASELINES_VTRACE_LIKE_H
#define BTRACE_BASELINES_VTRACE_LIKE_H

#include <memory>
#include <mutex>
#include <unordered_map>

#include "baselines/byte_ring.h"
#include "trace/tracer.h"

namespace btrace {

/** Configuration of the VampirTrace-like baseline. */
struct VtraceConfig
{
    std::size_t capacityBytes = 12u << 20;
    /** Threads the capacity is provisioned for (buffer = cap / this). */
    unsigned expectedThreads = 400;
    std::size_t minPerThread = 2048;
};

/** Per-thread overwrite rings. */
class VtraceLike : public Tracer
{
  public:
    explicit VtraceLike(const VtraceConfig &config,
                        const CostModel &model = CostModel::def());

    std::string name() const override { return "VTrace"; }
    std::size_t capacityBytes() const override;

    WriteTicket allocate(uint16_t core, uint32_t thread,
                         uint32_t payload_len) override;
    void confirm(WriteTicket &ticket) override;
    Dump dump() override;

    /** Number of per-thread buffers created so far. */
    std::size_t threadBufferCount() const;

    /** Memory actually allocated (may exceed the nominal budget). */
    std::size_t allocatedBytes() const;

  private:
    ByteRing &ringFor(uint32_t thread, double &cost);

    VtraceConfig cfg;
    std::size_t perThread;

    mutable std::mutex mapLock;
    std::unordered_map<uint32_t, std::unique_ptr<ByteRing>> rings;
};

} // namespace btrace

#endif // BTRACE_BASELINES_VTRACE_LIKE_H
