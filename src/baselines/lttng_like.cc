#include "baselines/lttng_like.h"

#include "trace/event.h"

namespace btrace {

LttngLike::LttngLike(const LttngConfig &config, const CostModel &model)
    : Tracer(model), cfg(config)
{
    BTRACE_ASSERT(cfg.cores >= 1 && cfg.subBuffers >= 2,
                  "need >= 1 core and >= 2 sub-buffers");
    perCore = (cfg.capacityBytes / cfg.cores) & ~std::size_t(7);
    subBytes = (perCore / cfg.subBuffers) & ~std::size_t(7);
    BTRACE_ASSERT(subBytes >= 4096, "sub-buffer too small");

    coresState.reserve(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c) {
        auto cs = std::make_unique<CoreState>(subBytes * cfg.subBuffers,
                                              cfg.subBuffers);
        // Sub-buffer s starts pre-reset for generation s (empty).
        for (unsigned s = 0; s < cfg.subBuffers; ++s)
            cs->subs[s].seq.store(s, std::memory_order_relaxed);
        coresState.push_back(std::move(cs));
    }
}

std::size_t
LttngLike::capacityBytes() const
{
    return subBytes * cfg.subBuffers * cfg.cores;
}

WriteTicket
LttngLike::allocate(uint16_t core, uint32_t thread, uint32_t payload_len)
{
    BTRACE_DASSERT(core < cfg.cores, "core id out of range");
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));
    BTRACE_DASSERT(need <= subBytes, "entry larger than a sub-buffer");

    WriteTicket ticket;
    ticket.core = core;
    ticket.thread = thread;
    // Context/TLS lookup, clock read, CTF field serialization — the
    // userspace framework cost LTTng pays per event.
    ticket.cost = costs.tlsLookup + costs.tscRead +
                  costs.lttngFramework + costs.setupOverhead;

    CoreState &cs = *coresState[core];
    for (int attempt = 0; attempt < 64; ++attempt) {
        const uint64_t gen = cs.curSeq.load(std::memory_order_acquire);
        SubBuf &sub = cs.subs[gen % cfg.subBuffers];
        if (sub.seq.load(std::memory_order_acquire) != gen)
            continue;  // switch in progress

        uint32_t r = sub.reserved.load(std::memory_order_acquire);
        bool switched = false;
        for (;;) {
            if (r + need > subBytes) {
                const SwitchResult sr = trySwitch(cs, gen, ticket.cost);
                if (sr == SwitchResult::WouldDrop) {
                    dropped.fetch_add(1, std::memory_order_relaxed);
                    ticket.status = AllocStatus::Drop;
                    return ticket;
                }
                switched = true;
                break;
            }
            if (sub.reserved.compare_exchange_weak(
                    r, r + need, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                ticket.dst = subBase(cs, gen) + r;
                ticket.entrySize = need;
                ticket.handle.slot = core;
                ticket.handle.aux = gen;
                ticket.status = AllocStatus::Ok;
                ticket.cost += 2 * costs.atomicLocal;
                return ticket;
            }
            ticket.cost += costs.atomicLocal;
        }
        if (switched)
            continue;
    }

    ticket.status = AllocStatus::Retry;
    return ticket;
}

LttngLike::SwitchResult
LttngLike::trySwitch(CoreState &cs, uint64_t gen, double &cost)
{
    const uint64_t next = gen + 1;
    SubBuf &target = cs.subs[next % cfg.subBuffers];

    const uint64_t tseq = target.seq.load(std::memory_order_acquire);
    if (tseq >= next) {
        // The target is already reset for (at least) the next
        // generation — initially, or by a concurrent switcher. Help
        // the current-sequence counter along.
        uint64_t expected = gen;
        cs.curSeq.compare_exchange_strong(expected, next,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
        return SwitchResult::Switched;
    }

    // The target still serves generation next - S; it must be fully
    // committed before it can be recycled. If a preempted writer holds
    // an uncommitted reservation, LTTng drops the incoming event.
    if (target.committed.load(std::memory_order_acquire) !=
        target.reserved.load(std::memory_order_acquire))
        return SwitchResult::WouldDrop;

    if (cs.switchLock.test_and_set(std::memory_order_acquire)) {
        cost += costs.retryBackoff;
        return SwitchResult::Switched;  // let the winner finish
    }

    if (cs.curSeq.load(std::memory_order_acquire) == gen) {
        // Pad the tail of the current sub-buffer so it tiles.
        SubBuf &cur = cs.subs[gen % cfg.subBuffers];
        uint32_t r = cur.reserved.load(std::memory_order_acquire);
        while (r < subBytes) {
            if (cur.reserved.compare_exchange_weak(
                    r, static_cast<uint32_t>(subBytes),
                    std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                writeDummy(subBase(cs, gen) + r,
                           static_cast<uint32_t>(subBytes) - r);
                cur.committed.fetch_add(
                    static_cast<uint32_t>(subBytes) - r,
                    std::memory_order_acq_rel);
                break;
            }
        }

        // Recycle the target for the next generation (its previous
        // contents — the oldest data of this core — are discarded).
        if (target.committed.load(std::memory_order_acquire) ==
            target.reserved.load(std::memory_order_acquire)) {
            target.reserved.store(0, std::memory_order_relaxed);
            target.committed.store(0, std::memory_order_relaxed);
            target.seq.store(next, std::memory_order_release);
            cs.curSeq.store(next, std::memory_order_release);
        } else {
            cs.switchLock.clear(std::memory_order_release);
            return SwitchResult::WouldDrop;
        }
    }
    cs.switchLock.clear(std::memory_order_release);
    cost += 3 * costs.atomicLocal;
    return SwitchResult::Switched;
}

void
LttngLike::confirm(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok, "confirm without Ok");
    CoreState &cs = *coresState[ticket.handle.slot];
    SubBuf &sub = cs.subs[ticket.handle.aux % cfg.subBuffers];
    sub.committed.fetch_add(ticket.entrySize, std::memory_order_acq_rel);
    ticket.cost += costs.atomicLocal;
}

Dump
LttngLike::dump()
{
    Dump out;
    for (auto &csp : coresState) {
        CoreState &cs = *csp;
        for (unsigned s = 0; s < cfg.subBuffers; ++s) {
            SubBuf &sub = cs.subs[s];
            const uint32_t r = sub.reserved.load(std::memory_order_acquire);
            const uint32_t c = sub.committed.load(std::memory_order_acquire);
            if (r == 0)
                continue;
            if (r != c) {
                ++out.unreadableBlocks;
                continue;
            }
            const uint64_t gen = sub.seq.load(std::memory_order_acquire);
            EntryCursor cursor(subBase(cs, gen), r);
            EntryView view;
            while (cursor.next(view)) {
                if (view.type != EntryType::Normal)
                    continue;
                out.entries.push_back(
                    DumpEntry{view.stamp, view.size, view.core,
                              view.thread, view.category, view.payloadOk});
            }
            if (cursor.malformed())
                ++out.abandonedBlocks;
        }
    }
    return out;
}

} // namespace btrace
