/**
 * @file
 * ftrace-like baseline: per-core ring buffers in overwrite mode with
 * preemption disabled around the write (Linux kernel Function Tracer
 * discipline, §2.2).
 *
 * Retention per core is perfect FIFO, but the buffer is statically
 * split 1/C per core, so skewed per-core production speeds leave slow
 * cores' buffers half-stale while fast cores overwrite recent data —
 * the utilization/effectivity problem of Fig 5. Preempt-off makes the
 * write path cheap and atomically owned in the kernel; it is exactly
 * the discipline that userspace tracers cannot afford.
 */

#ifndef BTRACE_BASELINES_FTRACE_LIKE_H
#define BTRACE_BASELINES_FTRACE_LIKE_H

#include <atomic>
#include <memory>
#include <vector>

#include "baselines/byte_ring.h"
#include "common/cacheline.h"
#include "trace/tracer.h"

namespace btrace {

/** Configuration of the ftrace-like baseline. */
struct FtraceConfig
{
    std::size_t capacityBytes = 12u << 20; //!< split evenly across cores
    unsigned cores = 12;
};

/** Per-core overwrite rings with preempt-off writes. */
class FtraceLike : public Tracer
{
  public:
    explicit FtraceLike(const FtraceConfig &config,
                        const CostModel &model = CostModel::def());

    std::string name() const override { return "ftrace"; }
    bool disablesPreemption() const override { return true; }
    std::size_t capacityBytes() const override;

    WriteTicket allocate(uint16_t core, uint32_t thread,
                         uint32_t payload_len) override;
    void confirm(WriteTicket &ticket) override;
    Dump dump() override;

  private:
    struct CoreRing
    {
        explicit CoreRing(std::size_t bytes) : ring(bytes) {}
        ByteRing ring;
        // Models the preempt_disable() critical section: within one
        // core writes are mutually exclusive by construction in the
        // kernel; real-thread harnesses get the same guarantee here.
        std::atomic_flag busy = ATOMIC_FLAG_INIT;
    };

    FtraceConfig cfg;
    std::size_t perCore;
    std::vector<std::unique_ptr<CoreRing>> rings;
};

} // namespace btrace

#endif // BTRACE_BASELINES_FTRACE_LIKE_H
