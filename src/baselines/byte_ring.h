/**
 * @file
 * Single-writer byte ring with overwrite-oldest semantics, the storage
 * primitive behind the ftrace-like (per-core) and VampirTrace-like
 * (per-thread) baselines.
 *
 * Entries are stored contiguously (never straddling the wrap point; a
 * dummy entry pads the tail instead) so the ring always tiles into
 * parseable entries between head and tail. The ring itself is not
 * thread-safe; callers provide exclusion (per-core preempt-off
 * emulation, or thread ownership).
 */

#ifndef BTRACE_BASELINES_BYTE_RING_H
#define BTRACE_BASELINES_BYTE_RING_H

#include <cstdint>
#include <vector>

#include "trace/event.h"
#include "trace/tracer.h"

namespace btrace {

/** Overwrite-oldest circular byte buffer of whole entries. */
class ByteRing
{
  public:
    explicit ByteRing(std::size_t bytes)
        : buf(bytes), size(bytes)
    {
        BTRACE_ASSERT(bytes >= 64 && bytes % 8 == 0, "bad ring size");
    }

    /**
     * Reserve @p need contiguous bytes, evicting oldest entries (and
     * padding the wrap point) as necessary. Returns the write pointer.
     */
    uint8_t *
    reserve(std::size_t need)
    {
        BTRACE_DASSERT(need <= size && need % 8 == 0, "bad reservation");

        // Pad the tail if the entry would straddle the wrap point.
        const std::size_t tail_off = tail % size;
        if (size - tail_off < need) {
            const std::size_t pad = size - tail_off;
            evictFor(pad);
            writeDummy(buf.data() + tail_off, pad);
            tail += pad;
        }
        evictFor(need);
        uint8_t *dst = buf.data() + tail % size;
        tail += need;
        return dst;
    }

    /** Walk retained entries oldest-to-newest into @p out. */
    void
    collect(std::vector<DumpEntry> &out) const
    {
        uint64_t at = head;
        while (at < tail) {
            const uint8_t *p = buf.data() + at % size;
            EntryCursor cursor(p, entryBytesAt(at));
            EntryView view;
            if (!cursor.next(view))
                break;  // should not happen; be defensive
            if (view.type == EntryType::Normal) {
                out.push_back(DumpEntry{view.stamp, view.size, view.core,
                                        view.thread, view.category,
                                        view.payloadOk});
            }
            at += view.size;
        }
    }

    /** Bytes currently retained. */
    std::size_t usedBytes() const { return std::size_t(tail - head); }

    std::size_t capacity() const { return size; }

  private:
    /** Drop oldest entries until @p need bytes fit. */
    void
    evictFor(std::size_t need)
    {
        while (tail + need - head > size) {
            const uint8_t *p = buf.data() + head % size;
            EntryCursor cursor(p, entryBytesAt(head));
            EntryView view;
            if (!cursor.next(view)) {
                // Damaged head (cannot happen with single writers);
                // drop everything to stay safe.
                head = tail;
                break;
            }
            head += view.size;
        }
    }

    /** Contiguous bytes available for parsing at absolute offset. */
    std::size_t
    entryBytesAt(uint64_t at) const
    {
        return size - at % size;
    }

    std::vector<uint8_t> buf;
    std::size_t size;
    uint64_t head = 0;  //!< absolute offset of the oldest entry
    uint64_t tail = 0;  //!< absolute offset of the next write
};

} // namespace btrace

#endif // BTRACE_BASELINES_BYTE_RING_H
