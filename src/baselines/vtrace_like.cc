#include "baselines/vtrace_like.h"

#include <algorithm>

namespace btrace {

VtraceLike::VtraceLike(const VtraceConfig &config, const CostModel &model)
    : Tracer(model), cfg(config)
{
    BTRACE_ASSERT(cfg.expectedThreads >= 1, "need at least one thread");
    perThread = std::max(cfg.minPerThread,
                         cfg.capacityBytes / cfg.expectedThreads) &
                ~std::size_t(7);
}

std::size_t
VtraceLike::capacityBytes() const
{
    // The nominal budget. With very many expected threads the
    // per-thread minimum can make the *allocated* total exceed this —
    // precisely the 1/T provisioning pathology (§2.2); see
    // allocatedBytes().
    return cfg.capacityBytes;
}

std::size_t
VtraceLike::allocatedBytes() const
{
    std::scoped_lock lock(mapLock);
    return rings.size() * perThread;
}

ByteRing &
VtraceLike::ringFor(uint32_t thread, double &cost)
{
    std::scoped_lock lock(mapLock);
    auto it = rings.find(thread);
    if (it == rings.end()) {
        it = rings.emplace(thread,
                           std::make_unique<ByteRing>(perThread)).first;
        cost += 10 * costs.setupOverhead;  // first-event buffer setup
    }
    return *it->second;
}

WriteTicket
VtraceLike::allocate(uint16_t core, uint32_t thread, uint32_t payload_len)
{
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));
    BTRACE_DASSERT(need <= perThread, "entry larger than a thread ring");

    WriteTicket ticket;
    ticket.core = core;
    ticket.thread = thread;
    // OTF record encoding, clock synchronization, and per-thread
    // bookkeeping: no atomics, but a heavyweight framework path.
    ticket.cost = costs.tscRead + costs.vtraceFramework +
                  costs.setupOverhead;

    ByteRing &ring = ringFor(thread, ticket.cost);
    ticket.dst = ring.reserve(need);
    ticket.entrySize = need;
    ticket.status = AllocStatus::Ok;
    return ticket;
}

void
VtraceLike::confirm(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok, "confirm without Ok");
    ticket.cost += costs.setupOverhead;  // flush bookkeeping
}

Dump
VtraceLike::dump()
{
    Dump out;
    std::scoped_lock lock(mapLock);
    for (auto &[thread, ring] : rings)
        ring->collect(out.entries);
    return out;
}

std::size_t
VtraceLike::threadBufferCount() const
{
    std::scoped_lock lock(mapLock);
    return rings.size();
}

} // namespace btrace
