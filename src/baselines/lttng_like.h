/**
 * @file
 * LTTng-UST-like baseline: per-core rings of sub-buffers, lockless
 * reservation, and *drop-newest* behaviour when the ring wraps onto a
 * sub-buffer that still has uncommitted (preempted-writer) data
 * (§2.2, Fig 1b).
 *
 * Each core's buffer is split into S sub-buffers. Producers reserve
 * space in the current sub-buffer with a CAS loop and commit with a
 * counter increment. Switching to the next sub-buffer requires its
 * previous generation to be fully committed; otherwise the incoming
 * event is dropped — LTTng sacrifices availability of the newest data
 * rather than block or disable preemption.
 */

#ifndef BTRACE_BASELINES_LTTNG_LIKE_H
#define BTRACE_BASELINES_LTTNG_LIKE_H

#include <atomic>
#include <memory>
#include <vector>

#include "trace/tracer.h"

namespace btrace {

/** Configuration of the LTTng-like baseline. */
struct LttngConfig
{
    std::size_t capacityBytes = 12u << 20; //!< split evenly across cores
    unsigned cores = 12;
    unsigned subBuffers = 8;               //!< sub-buffers per core
};

/** Per-core sub-buffered rings with drop-newest overwrite mode. */
class LttngLike : public Tracer
{
  public:
    explicit LttngLike(const LttngConfig &config,
                       const CostModel &model = CostModel::def());

    std::string name() const override { return "LTTng"; }
    std::size_t capacityBytes() const override;

    WriteTicket allocate(uint16_t core, uint32_t thread,
                         uint32_t payload_len) override;
    void confirm(WriteTicket &ticket) override;
    Dump dump() override;

    /** Events shed because the next sub-buffer was unfinished. */
    uint64_t droppedCount() const
    {
        return dropped.load(std::memory_order_relaxed);
    }

  private:
    struct SubBuf
    {
        std::atomic<uint64_t> seq{0};       //!< generation served
        std::atomic<uint32_t> reserved{0};  //!< bytes reserved
        std::atomic<uint32_t> committed{0}; //!< bytes committed
    };

    struct CoreState
    {
        CoreState(std::size_t bytes, unsigned sub_count)
            : buf(bytes), subs(sub_count) {}
        std::vector<uint8_t> buf;
        std::vector<SubBuf> subs;
        std::atomic<uint64_t> curSeq{0};
        std::atomic_flag switchLock = ATOMIC_FLAG_INIT;
    };

    /** Try to move core @p cs from generation @p gen to the next. */
    enum class SwitchResult { Switched, WouldDrop };
    SwitchResult trySwitch(CoreState &cs, uint64_t gen, double &cost);

    uint8_t *
    subBase(CoreState &cs, uint64_t gen)
    {
        return cs.buf.data() + (gen % cfg.subBuffers) * subBytes;
    }

    LttngConfig cfg;
    std::size_t perCore;
    std::size_t subBytes;
    std::vector<std::unique_ptr<CoreState>> coresState;
    std::atomic<uint64_t> dropped{0};
};

} // namespace btrace

#endif // BTRACE_BASELINES_LTTNG_LIKE_H
