#include "obs/btrace_metrics.h"

#include <algorithm>

#include "trace/event.h"

namespace btrace {

void
registerProfilerMetrics(MetricsRegistry &reg,
                        const CostProfiler &profiler)
{
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const auto p = static_cast<ProfilePhase>(i);
        reg.addHistogram(std::string("btrace_profile_") +
                             profilePhaseName(p) + "_ns",
                         std::string("Attributed ns in the ") +
                             profilePhaseName(p) + " phase",
                         &profiler.histogram(p));
    }
    reg.addCounter("btrace_profile_samples_total",
                   "Phase probes recorded across all phases",
                   [&profiler]() {
                       uint64_t n = 0;
                       for (std::size_t i = 0; i < kProfilePhases; ++i)
                           n += profiler
                                    .histogram(
                                        static_cast<ProfilePhase>(i))
                                    .count();
                       return static_cast<double>(n);
                   });
    reg.addGauge("btrace_profile_ns_per_tick",
                 "Calibrated nanoseconds per raw TSC tick",
                 [&profiler]() { return profiler.nsPerTick(); });
    reg.addGauge("btrace_profile_probe_overhead_ns",
                 "Estimated cost of one armed probe pair, subtracted "
                 "per sample",
                 [&profiler]() { return profiler.probeOverheadNs(); });
}

double
BTraceObs::effectivityRatio(const BTraceCounters::Snapshot &s,
                            std::size_t block_size)
{
    const double opened =
        static_cast<double>(s.advances) * static_cast<double>(block_size);
    if (opened <= 0.0) return 1.0;
    const double overhead =
        static_cast<double>(s.dummyBytes) +
        static_cast<double>(s.advances) *
            static_cast<double>(EntryLayout::blockHeaderBytes);
    return std::clamp(1.0 - overhead / opened, 0.0, 1.0);
}

double
BTraceObs::dummyOverheadFraction(const BTraceCounters::Snapshot &s,
                                 std::size_t block_size)
{
    const double opened =
        static_cast<double>(s.advances) * static_cast<double>(block_size);
    if (opened <= 0.0) return 0.0;
    return std::clamp(static_cast<double>(s.dummyBytes) / opened, 0.0,
                      1.0);
}

double
BTraceObs::consumerLagPositions() const
{
    const uint64_t head = bt.headPosition();
    if (!consumerSeen.load(std::memory_order_relaxed))
        return static_cast<double>(head);
    const uint64_t pos = consumerPos.load(std::memory_order_relaxed);
    return static_cast<double>(head - std::min(pos, head));
}

HealthInput
BTraceObs::healthInput() const
{
    HealthInput in;
    in.ctrs = bt.countersSnapshot();
    in.consumerLagPositions = consumerLagPositions();
    in.consumerActive = consumerSeen.load(std::memory_order_relaxed);
    return in;
}

BTraceObs::BTraceObs(BTrace &tracer, TracerObserver *observer,
                     BTraceObsOptions options)
    : bt(tracer), obs(observer)
{
    const std::string pfx = options.prefix + "_";
    using Field = uint64_t BTraceCounters::Snapshot::*;

    const auto counter = [&](const char *name, const char *help,
                             Field field) {
        reg.addCounter(pfx + name, help, [this, field]() {
            return static_cast<double>(bt.countersSnapshot().*field);
        });
    };

    counter("fast_allocs_total", "Single-RMW fast-path allocations",
            &BTraceCounters::Snapshot::fastAllocs);
    counter("boundary_fills_total",
            "Allocations that filled a block to its boundary",
            &BTraceCounters::Snapshot::boundaryFills);
    counter("stale_allocs_total",
            "Allocations retried against a stale RndPos",
            &BTraceCounters::Snapshot::staleAllocs);
    counter("advances_total", "Successful block advancements",
            &BTraceCounters::Snapshot::advances);
    counter("skips_total", "Metadata blocks skipped while held",
            &BTraceCounters::Snapshot::skips);
    counter("closes_total", "Blocks closed by dummy fill",
            &BTraceCounters::Snapshot::closes);
    counter("lock_races_total", "Advancement lock CAS losses",
            &BTraceCounters::Snapshot::lockRaces);
    counter("core_races_total", "Core-local RndPos CAS losses",
            &BTraceCounters::Snapshot::coreRaces);
    counter("would_block_total",
            "Writes refused because every metadata block was held",
            &BTraceCounters::Snapshot::wouldBlock);
    counter("dummy_bytes_total", "Bytes consumed by dummy entries",
            &BTraceCounters::Snapshot::dummyBytes);
    counter("resizes_total", "Buffer resizes committed",
            &BTraceCounters::Snapshot::resizes);
    counter("shared_rmws_total",
            "RMW operations on shared (contended) cache lines",
            &BTraceCounters::Snapshot::sharedRmws);
    counter("leases_total", "Thread-local block leases granted",
            &BTraceCounters::Snapshot::leases);
    counter("lease_entries_total", "Entries written under a lease",
            &BTraceCounters::Snapshot::leaseEntries);

    reg.addGauge(pfx + "leased_outstanding_bytes",
                 "Leased bytes not yet confirmed", [this]() {
                     return static_cast<double>(
                         bt.countersSnapshot().leasedOutstanding);
                 });
    reg.addGauge(pfx + "effectivity_ratio",
                 "Fraction of opened block bytes carrying real entries",
                 [this]() {
                     return effectivityRatio(bt.countersSnapshot(),
                                             bt.config().blockSize);
                 });
    reg.addGauge(pfx + "dummy_overhead_fraction",
                 "Dummy fill as a fraction of opened block bytes",
                 [this]() {
                     return dummyOverheadFraction(bt.countersSnapshot(),
                                                  bt.config().blockSize);
                 });
    reg.addGauge(pfx + "consumer_lag_positions",
                 "Head position minus last noted consumer position",
                 [this]() { return consumerLagPositions(); });
    reg.addGauge(pfx + "head_position",
                 "Global allocation frontier (positions)", [this]() {
                     return static_cast<double>(bt.headPosition());
                 });
    reg.addGauge(pfx + "capacity_bytes", "Current buffer capacity",
                 [this]() {
                     return static_cast<double>(bt.capacityBytes());
                 });
    reg.addGauge(pfx + "resident_bytes",
                 "Bytes of the span currently materialized", [this]() {
                     return static_cast<double>(bt.residentBytes());
                 });
    reg.addGauge(pfx + "blocks_complete",
                 "Active metadata slots fully confirmed", [this]() {
                     return static_cast<double>(bt.occupancy().complete);
                 });
    reg.addGauge(pfx + "blocks_open",
                 "Active metadata slots with alloc == confirm",
                 [this]() {
                     return static_cast<double>(bt.occupancy().open);
                 });
    reg.addGauge(pfx + "blocks_incomplete",
                 "Active metadata slots awaiting confirmations",
                 [this]() {
                     return static_cast<double>(
                         bt.occupancy().incomplete);
                 });

    if (obs != nullptr) {
        reg.addCounter(pfx + "obs_samples_total",
                       "Latency samples recorded by the observer",
                       [this]() {
                           return static_cast<double>(obs->samples());
                       });
        reg.addHistogram(pfx + "record_latency_ns",
                         "Sampled record() write latency (ns)",
                         &obs->recordNs);
        reg.addHistogram(pfx + "lease_close_ns",
                         "Sampled lease close latency (ns)",
                         &obs->leaseCloseNs);
    }
}

} // namespace btrace
