/**
 * @file
 * Minimal recursive-descent JSON reader shared by the observability
 * parsers (parseObsLine, parseFlightBundle). Scoped to what this
 * repo's own renderers emit: objects, arrays, strings, numbers, null.
 * No unicode escapes beyond the latin-1 range. Not a general JSON
 * parser — exists so tools and tests can round-trip obs files without
 * an external JSON dependency.
 */

#ifndef BTRACE_OBS_JSON_READER_H
#define BTRACE_OBS_JSON_READER_H

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace btrace {

struct JsonValue
{
    enum class Type { Null, Number, String, Object, Array };
    Type type = Type::Null;
    double num = 0.0;
    std::string str;
    std::vector<std::pair<std::string, JsonValue>> obj;
    std::vector<JsonValue> arr;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key) return &kv.second;
        return nullptr;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out)) return false;
        skipWs();
        return pos == s.size();
    }

    std::string error;

  private:
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    fail(const char *why)
    {
        if (error.empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s at offset %zu", why, pos);
            error = buf;
        }
        return false;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos >= s.size()) return fail("unexpected end");
        const char c = s[pos];
        if (c == '{') return object(out);
        if (c == '[') return array(out);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return string(out.str);
        }
        if (c == '-' || (c >= '0' && c <= '9')) return number(out);
        if (s.compare(pos, 4, "null") == 0) {
            pos += 4;
            out.type = JsonValue::Type::Null;
            return true;
        }
        return fail("unexpected token");
    }

    bool
    string(std::string &out)
    {
        if (s[pos] != '"') return fail("expected string");
        ++pos;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size()) return fail("bad escape");
                const char e = s[pos++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'u':
                    // Emitted only for control chars; decode latin-1
                    // range, which is all our renderers produce.
                    if (pos + 4 > s.size()) return fail("bad \\u");
                    out += static_cast<char>(
                        std::strtoul(s.substr(pos, 4).c_str(), nullptr,
                                     16));
                    pos += 4;
                    break;
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        if (pos >= s.size()) return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        out.num = std::strtod(start, &end);
        if (end == start) return fail("bad number");
        pos += static_cast<std::size_t>(end - start);
        out.type = JsonValue::Type::Number;
        return true;
    }

    bool
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key)) return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue v;
            if (!value(v)) return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue v;
            if (!value(v)) return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace btrace

#endif // BTRACE_OBS_JSON_READER_H
