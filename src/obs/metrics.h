/**
 * @file
 * Metrics registry of the observability plane (DESIGN.md §8).
 *
 * A MetricsRegistry is a named collection of read callbacks: counters
 * (monotonically non-decreasing cumulative values), gauges (levels
 * and derived ratios), and wide-range latency histograms
 * (common/latency_histogram.h). Producers register once at setup;
 * collect() evaluates every callback and returns a plain value-type
 * Collected that the exporters (obs/export.h) serialize to JSON-lines
 * or Prometheus text exposition format and the StatsSampler
 * (obs/sampler.h) turns into rates.
 *
 * Metric names are expected in Prometheus style already —
 * `[a-z_][a-z0-9_]*`, counters suffixed `_total` — so no exporter has
 * to mangle them. Registration is mutex-guarded against collection,
 * but the intended shape is: register everything, then start
 * sampling. The callbacks themselves must be safe to run concurrently
 * with live producers (relaxed atomic reads; no locks shared with the
 * hot path).
 */

#ifndef BTRACE_OBS_METRICS_H
#define BTRACE_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/latency_histogram.h"

namespace btrace {

/** Metric classes, Prometheus terminology. */
enum class MetricKind
{
    Counter,  //!< cumulative, non-decreasing
    Gauge,    //!< instantaneous level or ratio
};

/**
 * Per-series `key=value` label pairs (Prometheus dimension labels).
 * Series of one family (same name) differ only in their labels — e.g.
 * btraced's per-producer counters, one series per attached pid.
 */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** One evaluated scalar metric. */
struct MetricValue
{
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Gauge;
    double value = 0.0;
    MetricLabels labels;  //!< per-series labels (usually empty)
};

/**
 * Unique key of a series: the bare name without labels, or
 * `name{k="v",...}` — the form the JSON-lines exporter and the
 * sampler's rate matching use as map key.
 */
std::string seriesKey(const std::string &name,
                      const MetricLabels &labels);

/**
 * One evaluated histogram: headline quantiles for the JSON-lines
 * exporter plus the cumulative bucket series for the Prometheus native
 * histogram format (`_bucket` / `_sum` / `_count`).
 */
struct HistogramValue
{
    std::string name;
    std::string help;
    uint64_t count = 0;
    uint64_t sum = 0;  //!< exact sum of recorded values
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
    uint64_t max = 0;
    /**
     * (upper bound, cumulative count) pairs, ascending, one per
     * occupied log-linear bucket — empty buckets are elided, the
     * implicit `+Inf` bucket (== count) is not included.
     */
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/** Registry of metric callbacks; collect() evaluates them. */
class MetricsRegistry
{
  public:
    using ReadFn = std::function<double()>;

    /** Everything collect() evaluated, in registration order. */
    struct Collected
    {
        std::vector<MetricValue> metrics;
        std::vector<HistogramValue> histograms;
    };

    void addCounter(std::string name, std::string help, ReadFn fn);
    void addGauge(std::string name, std::string help, ReadFn fn);

    /**
     * Labeled-series variants: several series of one family (same
     * name, same help/kind) distinguished by labels. Exporters
     * announce the family once and emit one sample line per series.
     */
    void addCounter(std::string name, std::string help,
                    MetricLabels labels, ReadFn fn);
    void addGauge(std::string name, std::string help,
                  MetricLabels labels, ReadFn fn);

    /**
     * Register a histogram; @p h must outlive the registry. Each
     * collect() takes one merged snapshot and summarizes it.
     */
    void addHistogram(std::string name, std::string help,
                      const ConcurrentHistogram *h);

    /** Evaluate every registered metric now. */
    Collected collect() const;

    std::size_t metricCount() const;

  private:
    struct Scalar
    {
        std::string name;
        std::string help;
        MetricKind kind;
        ReadFn fn;
        MetricLabels labels;
    };

    struct Hist
    {
        std::string name;
        std::string help;
        const ConcurrentHistogram *h;
    };

    mutable std::mutex mu;
    std::vector<Scalar> scalars;
    std::vector<Hist> hists;
};

} // namespace btrace

#endif // BTRACE_OBS_METRICS_H
