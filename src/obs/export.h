/**
 * @file
 * Serialization of the observability plane (DESIGN.md §8).
 *
 * Two wire formats over the same registry:
 *
 *  - Prometheus text exposition format, rendered from a one-shot
 *    MetricsRegistry::Collected: `# HELP` / `# TYPE` preambles,
 *    counters with their `_total` names, and histograms in the native
 *    histogram form (cumulative `le`-bounded `_bucket` series over the
 *    occupied log-linear buckets, the mandatory `+Inf` bucket, `_sum`,
 *    `_count`). Suitable for dumping to a file a node_exporter
 *    textfile collector scrapes, or serving verbatim from any HTTP
 *    handler.
 *
 *  - JSON-lines, rendered from an ObsSample (one StatsSampler
 *    interval): sequence number, timestamp, labels, cumulative
 *    counters, per-second rates, gauges, histogram quantiles, and any
 *    health events that fired. One self-contained JSON object per
 *    line, so `tail -f | jq` works mid-run.
 *
 * parseObsLine() is the inverse of the JSON renderer for exactly the
 * schema emitted here — it exists so btrace_inspect and the tests can
 * round-trip obs files without an external JSON dependency. It is not
 * a general JSON parser.
 */

#ifndef BTRACE_OBS_EXPORT_H
#define BTRACE_OBS_EXPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace btrace {

/** `key="value"` pairs attached to every exported series/line. */
using ObsLabels = std::vector<std::pair<std::string, std::string>>;

/** One sampling interval, ready to serialize. */
struct ObsSample
{
    uint64_t seq = 0;     //!< monotone per-sampler sequence
    double tSec = 0.0;    //!< seconds since sampler construction
    ObsLabels labels;
    /** Cumulative counter values, registration order. */
    std::vector<std::pair<std::string, double>> counters;
    /** Per-second counter rates over the previous interval. */
    std::vector<std::pair<std::string, double>> rates;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramValue> histograms;
    std::vector<HealthEvent> health;
};

/** Escape a string for embedding in a JSON double-quoted literal. */
std::string jsonEscape(const std::string &s);

/** Render one ObsSample as a single JSON object (no newline). */
std::string renderJsonLine(const ObsSample &sample);

/**
 * Render a collected registry in Prometheus text exposition format
 * (version 0.0.4). @p labels are attached to every series.
 */
std::string renderPrometheus(const MetricsRegistry::Collected &collected,
                             const ObsLabels &labels = {});

/** parseObsLine() result: the flat numeric view of one JSON line. */
struct ParsedObsLine
{
    bool ok = false;          //!< parse succeeded and shape matched
    std::string error;        //!< first problem found when !ok
    uint64_t seq = 0;
    double tSec = 0.0;
    std::map<std::string, std::string> labels;
    std::map<std::string, double> counters;
    std::map<std::string, double> rates;
    std::map<std::string, double> gauges;
    /** histogram name → field ("count"/"p50"/"p99"/"p999"/"max") → value */
    std::map<std::string, std::map<std::string, double>> histograms;
    std::vector<std::string> healthKinds;
};

/** Parse one line previously produced by renderJsonLine(). */
ParsedObsLine parseObsLine(const std::string &line);

} // namespace btrace

#endif // BTRACE_OBS_EXPORT_H
