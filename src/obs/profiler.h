/**
 * @file
 * Cycle-accurate cost-attribution profiler for the fast path
 * (DESIGN.md §14).
 *
 * The ROADMAP's "hardware-speed fast path" item needs to know where
 * the remaining nanoseconds of a write go: the lease-claim FAA, the
 * bump-pointer serve, the confirm publish, retry/advancement backoff,
 * lease renewal/close, or the control-snapshot poll. CostProfiler
 * answers that with scoped PhaseProbe RAII timers at each phase,
 * timestamped by the TSC (rdtsc on x86, the virtual counter on
 * aarch64, CLOCK_MONOTONIC_RAW elsewhere) and converted to
 * nanoseconds through a one-time calibration against
 * CLOCK_MONOTONIC_RAW.
 *
 * Arming follows the journal contract exactly: a tracer holds one
 * std::atomic<CostProfiler *> and every probe site pays one relaxed
 * load and a predicted-not-taken branch when no profiler is attached.
 * Armed, a probe reads the TSC twice and feeds the delta into a
 * per-thread shard of the phase's ConcurrentHistogram — relaxed adds
 * on profiler-owned cache lines only, so arming changes *zero* shared
 * RMWs on the write protocol (asserted by the ProfilerContract test).
 *
 * The probe's own cost (two back-to-back TSC reads) is measured at
 * calibration and subtracted from every sample, clamped at zero;
 * snapshot() reports the estimate so readers can judge the residue.
 *
 * ThreadPerfCounters optionally adds hardware counters (cycles,
 * cache misses, branch misses) per thread via perf_event_open. The
 * syscall is frequently unavailable (seccomp, perf_event_paranoid,
 * containers): open() then fails with a message and everything else
 * degrades to TSC-only — a warning, never an error.
 */

#ifndef BTRACE_OBS_PROFILER_H
#define BTRACE_OBS_PROFILER_H

#include <array>
#include <atomic>
#include <cstdint>
#include <ctime>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "common/latency_histogram.h"

namespace btrace {

/** Fast-path phases attributed by the profiler (DESIGN.md §14). */
enum class ProfilePhase : uint8_t
{
    Claim = 0,    //!< span/entry reservation FAA on Allocated
    Bump,         //!< bump-pointer serve from a leased span
    Publish,      //!< confirm FAA on Confirmed (single or bulk)
    Retry,        //!< advancement + backoff (tryAdvance, retry spins)
    LeaseRenew,   //!< lease close overhead (remainder fill, owner CAS)
    ControlPoll,  //!< control-page poll for a newer snapshot
    Count_,       //!< sentinel: number of phases
};

constexpr std::size_t kProfilePhases =
    static_cast<std::size_t>(ProfilePhase::Count_);

/** Stable lowercase identifier ("claim", ..., "control_poll"). */
const char *profilePhaseName(ProfilePhase p);

/** Raw timestamp-counter read (cycles on x86; ns on the fallback). */
inline uint64_t
profilerTicks()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#elif defined(__aarch64__)
    uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
    return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
#endif
}

/** Per-phase summary of one snapshot (all values in nanoseconds). */
struct PhaseStats
{
    uint64_t count = 0;
    uint64_t totalNs = 0;
    double meanNs = 0.0;
    uint64_t p50Ns = 0;
    uint64_t p99Ns = 0;
    uint64_t maxNs = 0;
};

/** Merged view of every phase at one point in time. */
struct ProfileSnapshot
{
    std::array<PhaseStats, kProfilePhases> phases;
    double nsPerTick = 1.0;
    double probeOverheadNs = 0.0;

    const PhaseStats &
    of(ProfilePhase p) const
    {
        return phases[static_cast<std::size_t>(p)];
    }

    /** Total probes across all phases. */
    uint64_t samples() const;
    /** Sum of attributed nanoseconds across all phases. */
    uint64_t attributedNs() const;
    /** Human-readable phase-attribution table. */
    std::string table() const;
};

/**
 * Phase-attribution collector: one ConcurrentHistogram (per-thread
 * shards, relaxed adds) per fast-path phase, in nanoseconds. All
 * state is profiler-owned — nothing here ever touches tracer-shared
 * words, which is what keeps arming free of shared RMWs.
 */
class CostProfiler
{
  public:
    /** @p shards 0 = auto (clamped hardware concurrency). */
    explicit CostProfiler(unsigned shards = 0);

    CostProfiler(const CostProfiler &) = delete;
    CostProfiler &operator=(const CostProfiler &) = delete;

    /**
     * Record one probe: @p ticks raw TSC delta, minus the calibrated
     * probe overhead (clamped at zero), converted to ns. Thread-local
     * shard write only; called from PhaseProbe destructors.
     */
    void
    add(ProfilePhase p, uint64_t ticks)
    {
        const uint64_t net =
            ticks > overheadTicksVal ? ticks - overheadTicksVal : 0;
        hist[static_cast<std::size_t>(p)].add(
            static_cast<uint64_t>(double(net) * nsPerTickVal + 0.5));
    }

    /** Calibrated nanoseconds per raw tick. */
    double nsPerTick() const { return nsPerTickVal; }

    /** Estimated cost of one armed probe pair, in ns. */
    double
    probeOverheadNs() const
    {
        return double(overheadTicksVal) * nsPerTickVal;
    }

    /** Per-phase histogram (for MetricsRegistry::addHistogram). */
    const ConcurrentHistogram &
    histogram(ProfilePhase p) const
    {
        return hist[static_cast<std::size_t>(p)];
    }

    /** Merge every shard into a per-phase summary. */
    ProfileSnapshot snapshot() const;

    /** Reset every phase histogram (not the calibration). */
    void clear();

  private:
    std::array<ConcurrentHistogram, kProfilePhases> hist;
    double nsPerTickVal = 1.0;
    uint64_t overheadTicksVal = 0;
};

/**
 * Scoped phase timer. Construct with the tracer's armed pointer
 * (Tracer::activeProfiler()); a null profiler makes both ends a
 * branch, an attached one brackets the scope with two TSC reads.
 */
class PhaseProbe
{
  public:
    PhaseProbe(CostProfiler *p, ProfilePhase ph) : prof(p), phase(ph)
    {
        if (prof != nullptr)
            start = profilerTicks();
    }

    ~PhaseProbe()
    {
        if (prof != nullptr)
            prof->add(phase, profilerTicks() - start);
    }

    PhaseProbe(const PhaseProbe &) = delete;
    PhaseProbe &operator=(const PhaseProbe &) = delete;

  private:
    CostProfiler *prof;
    ProfilePhase phase;
    uint64_t start = 0;
};

/** One reading of the hardware counters. */
struct PerfSample
{
    uint64_t cycles = 0;
    uint64_t cacheMisses = 0;
    uint64_t branchMisses = 0;
};

/**
 * Per-thread perf_event_open counter group (cycles + cache misses +
 * branch misses, userspace only). open() must run on the thread being
 * measured; it returns false — with errno-specific detail in error()
 * — wherever the syscall is unavailable (ENOSYS), forbidden (EACCES/
 * EPERM under perf_event_paranoid or seccomp), or the PMU is missing
 * (ENOENT/ENODEV in VMs). Callers degrade to TSC-only timing.
 */
class ThreadPerfCounters
{
  public:
    ThreadPerfCounters() = default;
    ~ThreadPerfCounters();

    ThreadPerfCounters(const ThreadPerfCounters &) = delete;
    ThreadPerfCounters &operator=(const ThreadPerfCounters &) = delete;

    /** Open + enable the group on the calling thread. */
    bool open();

    /** True between a successful open() and destruction. */
    bool ok() const { return fds[0] >= 0; }

    /** Why open() failed (empty until it does). */
    const std::string &error() const { return err; }

    /** Zero the counters (keeps them enabled). */
    void reset();

    /** Current totals since open()/reset(). Zeros when not ok(). */
    PerfSample read() const;

  private:
    void closeAll();

    int fds[3] = {-1, -1, -1};  //!< leader (cycles), cache, branch
    std::string err;
};

} // namespace btrace

#endif // BTRACE_OBS_PROFILER_H
