#include "obs/metrics.h"

#include <utility>

namespace btrace {

std::string
seriesKey(const std::string &name, const MetricLabels &labels)
{
    if (labels.empty())
        return name;
    std::string out = name;
    out += "{";
    bool first = true;
    for (const auto &kv : labels) {
        if (!first)
            out += ",";
        first = false;
        out += kv.first + "=\"" + kv.second + "\"";
    }
    out += "}";
    return out;
}

void
MetricsRegistry::addCounter(std::string name, std::string help,
                            ReadFn fn)
{
    addCounter(std::move(name), std::move(help), MetricLabels{},
               std::move(fn));
}

void
MetricsRegistry::addGauge(std::string name, std::string help, ReadFn fn)
{
    addGauge(std::move(name), std::move(help), MetricLabels{},
             std::move(fn));
}

void
MetricsRegistry::addCounter(std::string name, std::string help,
                            MetricLabels labels, ReadFn fn)
{
    std::lock_guard<std::mutex> lock(mu);
    scalars.push_back(Scalar{std::move(name), std::move(help),
                             MetricKind::Counter, std::move(fn),
                             std::move(labels)});
}

void
MetricsRegistry::addGauge(std::string name, std::string help,
                          MetricLabels labels, ReadFn fn)
{
    std::lock_guard<std::mutex> lock(mu);
    scalars.push_back(Scalar{std::move(name), std::move(help),
                             MetricKind::Gauge, std::move(fn),
                             std::move(labels)});
}

void
MetricsRegistry::addHistogram(std::string name, std::string help,
                              const ConcurrentHistogram *h)
{
    std::lock_guard<std::mutex> lock(mu);
    hists.push_back(Hist{std::move(name), std::move(help), h});
}

MetricsRegistry::Collected
MetricsRegistry::collect() const
{
    std::lock_guard<std::mutex> lock(mu);
    Collected out;
    out.metrics.reserve(scalars.size());
    for (const Scalar &s : scalars) {
        MetricValue v;
        v.name = s.name;
        v.help = s.help;
        v.kind = s.kind;
        v.value = s.fn ? s.fn() : 0.0;
        v.labels = s.labels;
        out.metrics.push_back(std::move(v));
    }
    out.histograms.reserve(hists.size());
    for (const Hist &h : hists) {
        HistogramValue v;
        v.name = h.name;
        v.help = h.help;
        if (h.h != nullptr) {
            const HistogramSnapshot snap = h.h->snapshot();
            v.count = snap.count();
            v.sum = snap.sum;
            v.p50 = snap.quantile(0.50);
            v.p99 = snap.quantile(0.99);
            v.p999 = snap.quantile(0.999);
            v.max = snap.maxValue();
            // Cumulative bucket series for the Prometheus exporter.
            // Only occupied buckets get an explicit le bound (the full
            // log-linear grid is ~500 buckets, nearly all empty); the
            // +Inf bucket is implied by count. Upper bound of bucket b
            // is the lower bound of b+1 (buckets are half-open); the
            // overflow bucket has no finite bound and is elided.
            uint64_t cum = 0;
            for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                if (snap.counts[b] == 0)
                    continue;
                cum += snap.counts[b];
                if (b + 1 >= ConcurrentHistogram::kBuckets)
                    continue;  // overflow bucket: +Inf only
                v.buckets.emplace_back(
                    ConcurrentHistogram::bucketLowerBound(b + 1), cum);
            }
        }
        out.histograms.push_back(std::move(v));
    }
    return out;
}

std::size_t
MetricsRegistry::metricCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return scalars.size() + hists.size();
}

} // namespace btrace
