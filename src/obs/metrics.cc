#include "obs/metrics.h"

#include <utility>

namespace btrace {

void
MetricsRegistry::addCounter(std::string name, std::string help,
                            ReadFn fn)
{
    std::lock_guard<std::mutex> lock(mu);
    scalars.push_back(Scalar{std::move(name), std::move(help),
                             MetricKind::Counter, std::move(fn)});
}

void
MetricsRegistry::addGauge(std::string name, std::string help, ReadFn fn)
{
    std::lock_guard<std::mutex> lock(mu);
    scalars.push_back(Scalar{std::move(name), std::move(help),
                             MetricKind::Gauge, std::move(fn)});
}

void
MetricsRegistry::addHistogram(std::string name, std::string help,
                              const ConcurrentHistogram *h)
{
    std::lock_guard<std::mutex> lock(mu);
    hists.push_back(Hist{std::move(name), std::move(help), h});
}

MetricsRegistry::Collected
MetricsRegistry::collect() const
{
    std::lock_guard<std::mutex> lock(mu);
    Collected out;
    out.metrics.reserve(scalars.size());
    for (const Scalar &s : scalars) {
        MetricValue v;
        v.name = s.name;
        v.help = s.help;
        v.kind = s.kind;
        v.value = s.fn ? s.fn() : 0.0;
        out.metrics.push_back(std::move(v));
    }
    out.histograms.reserve(hists.size());
    for (const Hist &h : hists) {
        HistogramValue v;
        v.name = h.name;
        v.help = h.help;
        if (h.h != nullptr) {
            const HistogramSnapshot snap = h.h->snapshot();
            v.count = snap.count();
            v.p50 = snap.quantile(0.50);
            v.p99 = snap.quantile(0.99);
            v.p999 = snap.quantile(0.999);
            v.max = snap.maxValue();
        }
        out.histograms.push_back(std::move(v));
    }
    return out;
}

std::size_t
MetricsRegistry::metricCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return scalars.size() + hists.size();
}

} // namespace btrace
