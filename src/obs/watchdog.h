/**
 * @file
 * Health watchdog of the observability plane (DESIGN.md §8).
 *
 * A tracer that silently stalls or silently drops is worse than no
 * tracer. The watchdog consumes one HealthInput per sampling interval
 * — a coherent counter snapshot plus the consumer-lag gauge — and
 * pattern-matches interval-over-interval deltas against the failure
 * signatures we have actually hit:
 *
 *  - StalledAdvancement: writers are bouncing off the tracer
 *    (wouldBlock rising) while the advancement loop makes no progress
 *    (advances flat) for N consecutive intervals. This is the §3.4
 *    every-metadata-block-held state escalating from transient to
 *    persistent.
 *  - LeaseStragglerWedge: the same stall with leased-outstanding
 *    bytes pinned at a nonzero level and no new leases granted — the
 *    PR 2 livelock signature, where preempted lease owners that never
 *    close wedge one metadata block each until the tracer deadlocks.
 *  - ConsumerLagGrowth: an attached consumer keeps falling further
 *    behind the overwrite frontier for N consecutive intervals; its
 *    next read will report overwrittenPositions (data loss).
 *
 * Detection is purely functional over the fed inputs, so tests drive
 * it deterministically: provoke a real stall with the BTRACE_TEST_YIELD
 * park hooks (sim::PreemptionInjector), feed snapshots, assert the
 * event. Each event latches until its condition clears, so a
 * persistent stall emits one event, not one per interval.
 */

#ifndef BTRACE_OBS_WATCHDOG_H
#define BTRACE_OBS_WATCHDOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/btrace.h"

namespace btrace {

/** Classified health conditions the watchdog can report. */
enum class HealthKind
{
    StalledAdvancement,
    LeaseStragglerWedge,
    ConsumerLagGrowth,
};

/** Stable snake_case identifier (JSON `kind` field). */
const char *healthKindName(HealthKind kind);

/** One structured health event. */
struct HealthEvent
{
    HealthKind kind = HealthKind::StalledAdvancement;
    uint64_t atSeq = 0;     //!< sample sequence that fired it
    std::string detail;     //!< human-readable evidence
};

/** Sensitivity knobs; defaults are deliberately conservative. */
struct WatchdogOptions
{
    /** Consecutive bad intervals before a stall event fires. */
    int stallIntervals = 2;
    /** Minimum wouldBlock rise per interval to call writers active. */
    uint64_t minWouldBlockRise = 1;
    /** Consecutive growing-lag intervals before a lag event fires. */
    int lagIntervals = 3;
};

/** One interval's raw signals, fed by the sampler (or a test). */
struct HealthInput
{
    BTraceCounters::Snapshot ctrs;
    double consumerLagPositions = 0.0;
    bool consumerActive = false;  //!< a consumer position was noted
    double tSec = 0.0;
    uint64_t seq = 0;
};

/** Stateful interval-delta analyzer; one instance per tracer. */
class HealthWatchdog
{
  public:
    explicit HealthWatchdog(WatchdogOptions options = {})
        : opt(options)
    {
    }

    /**
     * Feed the next interval; returns the events that fired on this
     * interval (possibly none). The first call only establishes the
     * baseline.
     */
    std::vector<HealthEvent> observe(const HealthInput &in);

    /** Events fired since construction (accumulated). */
    const std::vector<HealthEvent> &history() const { return fired; }

  private:
    WatchdogOptions opt;
    bool havePrev = false;
    HealthInput prev;
    int stallStreak = 0;
    int lagStreak = 0;
    bool stallLatched = false;
    bool wedgeLatched = false;
    bool lagLatched = false;
    std::vector<HealthEvent> fired;
};

} // namespace btrace

#endif // BTRACE_OBS_WATCHDOG_H
