#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace btrace {

namespace {

constexpr int kBlocksPid = 1;     //!< block-track process
constexpr int kLifecyclePid = 2;  //!< lease/resize/consumer process

struct EventWriter
{
    std::string out;
    bool first = true;

    void
    beginEvent()
    {
        if (!first) out += ",";
        first = false;
    }

    void
    metadata(int pid, const char *processName)
    {
        beginEvent();
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                      "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                      pid, processName);
        out += buf;
    }

    void
    complete(const std::string &name, int pid, uint64_t tid, double ts,
             double dur, const std::string &args)
    {
        beginEvent();
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"X\",\"cat\":\"btrace\",\"pid\":%d,"
                      "\"tid\":%" PRIu64 ",\"ts\":%.3f,\"dur\":%.3f",
                      pid, tid, ts, dur);
        out += "{\"name\":\"" + name + "\"," + buf +
               ",\"args\":{" + args + "}}";
    }

    void
    instant(const std::string &name, int pid, uint64_t tid, double ts,
            char scope, const std::string &args)
    {
        beginEvent();
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"i\",\"cat\":\"btrace\",\"pid\":%d,"
                      "\"tid\":%" PRIu64 ",\"ts\":%.3f,\"s\":\"%c\"",
                      pid, tid, ts, scope);
        out += "{\"name\":\"" + name + "\"," + buf +
               ",\"args\":{" + args + "}}";
    }
};

std::string
u64Args(const char *k1, uint64_t v1, const char *k2 = nullptr,
        uint64_t v2 = 0)
{
    char buf[128];
    if (k2 != nullptr) {
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":%" PRIu64 ",\"%s\":%" PRIu64, k1, v1, k2,
                      v2);
    } else {
        std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, k1, v1);
    }
    return buf;
}

} // namespace

std::string
journalTraceEvents(const std::vector<JournalRecord> &records,
                   const TraceEventExportOptions &opt)
{
    if (records.empty())
        return "";

    uint64_t t0 = records.front().tsc;
    uint64_t tMax = t0;
    for (const JournalRecord &r : records) {
        t0 = std::min(t0, r.tsc);
        tMax = std::max(tMax, r.tsc);
    }
    const auto toUs = [&](uint64_t tsc) {
        return double(tsc - t0) * opt.nsPerTick / 1000.0;
    };
    const uint64_t tracks =
        opt.activeBlocks != 0 ? uint64_t(opt.activeBlocks) : 64;
    const auto trackOf = [&](uint64_t block) { return block % tracks; };

    EventWriter w;
    w.out.reserve(records.size() * 128);
    w.metadata(kBlocksPid, "BTrace blocks");
    w.metadata(kLifecyclePid, "BTrace lifecycle");

    // BlockOpen is stashed until its close arrives; a block position
    // opens at most once (positions are monotonic), so a plain map is
    // the full pairing state.
    std::map<uint64_t, uint64_t> openAt;  // block position -> open tsc

    for (const JournalRecord &r : records) {
        const double ts = toUs(r.tsc);
        switch (r.kind) {
          case JournalEventKind::BlockOpen:
            openAt[r.block] = r.tsc;
            break;
          case JournalEventKind::BlockClose: {
            const auto reason = static_cast<BlockCloseReason>(r.arg);
            char name[64];
            std::snprintf(name, sizeof(name),
                          "block %" PRIu64 " (%s)", r.block,
                          blockCloseReasonName(reason));
            const auto it = openAt.find(r.block);
            if (it != openAt.end()) {
                const double open_ts = toUs(it->second);
                w.complete(name, kBlocksPid, trackOf(r.block), open_ts,
                           std::max(0.0, ts - open_ts),
                           u64Args("block", r.block) + ",\"reason\":\"" +
                               blockCloseReasonName(reason) + "\"");
                openAt.erase(it);
            } else {
                // Close of a block whose open predates the journal
                // window (ring overwrote it): still worth a mark.
                w.instant(name, kBlocksPid, trackOf(r.block), ts, 't',
                          u64Args("block", r.block));
            }
            break;
          }
          case JournalEventKind::BlockSkip:
            w.instant("skip", kBlocksPid, trackOf(r.block), ts, 't',
                      u64Args("block", r.block, "confirmed_pos", r.arg));
            break;
          case JournalEventKind::WatchdogTrip:
            // Global scope: a trip concerns the whole process view.
            w.instant("watchdog_trip", kLifecyclePid, r.tid, ts, 'g',
                      u64Args("health_kind", r.arg));
            break;
          default:
            w.instant(journalEventKindName(r.kind), kLifecyclePid,
                      r.tid, ts, 't',
                      u64Args("block", r.block, "arg", r.arg));
            break;
        }
    }

    // Blocks still open when the journal ended: emit them as complete
    // events spanning to the last record so they are visible as open
    // tracks (an unclosed block is often the finding).
    for (const auto &kv : openAt) {
        char name[48];
        std::snprintf(name, sizeof(name), "block %" PRIu64 " (open)",
                      kv.first);
        const double open_ts = toUs(kv.second);
        w.complete(name, kBlocksPid, trackOf(kv.first), open_ts,
                   std::max(0.0, toUs(tMax) - open_ts),
                   u64Args("block", kv.first, "unclosed", 1));
    }

    return w.out;
}

std::string
exportJournalChromeJson(const std::vector<JournalRecord> &records,
                        const TraceEventExportOptions &opt)
{
    return "{\"traceEvents\":[" + journalTraceEvents(records, opt) +
           "]}";
}

} // namespace btrace
