/**
 * @file
 * Chrome trace-event export of the lifecycle journal (DESIGN.md §9).
 *
 * Emits the legacy Chrome trace-event JSON format ("JSON Array
 * Format" with a traceEvents wrapper) that Perfetto's legacy importer
 * and chrome://tracing both load: blocks become tracks under a
 * "BTrace blocks" process with open→close complete ("X") events,
 * skips become instant events on the affected block's track, and
 * lease / resize / reclaim / consumer / watchdog transitions become
 * instant ("i") events under a "BTrace lifecycle" process. Timestamps
 * are microseconds rebased to the earliest journal record.
 */

#ifndef BTRACE_OBS_TRACE_EXPORT_H
#define BTRACE_OBS_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "obs/journal.h"

namespace btrace {

struct TraceEventExportOptions
{
    /** Nanoseconds per journal tsc tick (1.0: tsc already in ns). */
    double nsPerTick = 1.0;
    /**
     * Active-block count A. When nonzero, block events are folded
     * onto A tracks (track = position mod A, matching the metadata
     * slot); 0 falls back to position mod 64.
     */
    std::size_t activeBlocks = 0;
};

/**
 * Render the journal as a comma-joined list of trace-event objects,
 * without the enclosing array — composable with other event sources
 * (see analysis/export.h). Empty string when @p records is empty.
 */
std::string journalTraceEvents(const std::vector<JournalRecord> &records,
                               const TraceEventExportOptions &opt = {});

/** Render a complete `{"traceEvents":[...]}` document. */
std::string
exportJournalChromeJson(const std::vector<JournalRecord> &records,
                        const TraceEventExportOptions &opt = {});

} // namespace btrace

#endif // BTRACE_OBS_TRACE_EXPORT_H
