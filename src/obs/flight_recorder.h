/**
 * @file
 * Crash-safe flight recorder of the observability plane (DESIGN.md §9).
 *
 * When the watchdog trips — or a tool asks — the most valuable thing
 * to capture is the tracer's state *right now*, before anyone pokes at
 * it: the last-N lifecycle journal events (the transition sequence
 * that got here), a counters snapshot, and the raw per-slot metadata
 * words. The FlightRecorder renders that as one self-contained JSON
 * bundle and writes it to a file.
 *
 * Trigger rules: dump() is invoked (a) by the StatsSampler's health
 * hook on the first HealthWatchdog trip of a run, (b) explicitly by
 * tools (`replay --flight-out`, end-of-run), (c) by tests. Capture is
 * async-safe with respect to the tracer: it takes no tracer locks and
 * reads only relaxed atomics (countersSnapshot, slotStatesInto,
 * journal snapshotInto), so it works even while producers are live or
 * a resize is wedged mid-quiesce — exactly the states worth
 * post-morteming. The dump path additionally never allocates: every
 * capture buffer is sized at construction, the JSON is rendered by a
 * bounded buffer writer, and the file write uses POSIX open/write —
 * so a trip fired *because* the process is out of memory still
 * produces a bundle. On an arena-backed tracer (shm/file storage,
 * DESIGN.md §10) the bundle is also copied into the arena's flight
 * region, where it survives process death.
 */

#ifndef BTRACE_OBS_FLIGHT_RECORDER_H
#define BTRACE_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/btrace.h"
#include "obs/journal.h"

namespace btrace {

struct FlightRecorderOptions
{
    /** Bundle file path; empty disables dump() (render still works). */
    std::string path;
    /** Journal tail length included in the bundle. */
    std::size_t lastN = 256;
};

class FlightRecorder
{
  public:
    /**
     * @p journal may be null (bundle then has an empty journal
     * section). Both referents must outlive the recorder. All capture
     * scratch is allocated here, once — dump() never allocates.
     */
    FlightRecorder(BTrace &tracer, const EventJournal *journal,
                   FlightRecorderOptions options);

    /** Render the bundle JSON without touching the filesystem. */
    std::string render(const std::string &trigger) const;

    /**
     * Render the bundle into @p dst (at most @p cap bytes, truncating
     * if undersized — the preallocated internal buffer never is) and
     * return the length written. Allocation-free and lock-free; not
     * reentrant (concurrent captures share the scratch buffers — the
     * latest trip is the one worth keeping anyway).
     */
    std::size_t renderInto(char *dst, std::size_t cap,
                           const char *trigger) const noexcept;

    /**
     * Capture the bundle, copy it into the storage arena's flight
     * region when the tracer has one, and write it to options.path,
     * overwriting any previous bundle. Returns false when the path is
     * empty or the file write failed. Never allocates — safe on a
     * watchdog trip caused by memory exhaustion.
     */
    bool dump(const char *trigger) noexcept;

    bool dump(const std::string &trigger)
    {
        return dump(trigger.c_str());
    }

    /** Bundles successfully written so far. */
    uint64_t dumps() const
    {
        return written.load(std::memory_order_relaxed);
    }

  private:
    BTrace &bt;
    const EventJournal *jnl;
    FlightRecorderOptions opt;
    std::atomic<uint64_t> written{0};
    /**
     * Constructor-sized capture scratch (mutable: render is logically
     * const; the scratch is why captures are not reentrant).
     */
    mutable std::vector<MetaSlotState> slotScratch;
    mutable std::vector<JournalRecord> jnlScratch;
    mutable std::vector<char> renderBuf;
};

/** parseFlightBundle() result: the decoded view of one bundle file. */
struct ParsedFlightBundle
{
    bool ok = false;
    std::string error;  //!< first problem found when !ok
    std::string trigger;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    /** Per-slot state: field name → value, one map per metadata slot. */
    std::vector<std::map<std::string, double>> slots;
    uint64_t journalEmitted = 0;
    /** Journal tail; kind is the snake_case name, reason set for closes. */
    struct Event
    {
        std::string kind;
        std::string reason;  //!< block_close only, else empty
        uint64_t tsc = 0;
        uint64_t seq = 0;
        uint64_t block = 0;
        uint64_t arg = 0;
        uint32_t tid = 0;
        uint32_t core = 0;
    };
    std::vector<Event> journal;
};

/** Parse a bundle previously produced by FlightRecorder::render(). */
ParsedFlightBundle parseFlightBundle(const std::string &text);

} // namespace btrace

#endif // BTRACE_OBS_FLIGHT_RECORDER_H
