/**
 * @file
 * Crash-safe flight recorder of the observability plane (DESIGN.md §9).
 *
 * When the watchdog trips — or a tool asks — the most valuable thing
 * to capture is the tracer's state *right now*, before anyone pokes at
 * it: the last-N lifecycle journal events (the transition sequence
 * that got here), a counters snapshot, and the raw per-slot metadata
 * words. The FlightRecorder renders that as one self-contained JSON
 * bundle and writes it to a file.
 *
 * Trigger rules: dump() is invoked (a) by the StatsSampler's health
 * hook on the first HealthWatchdog trip of a run, (b) explicitly by
 * tools (`replay --flight-out`, end-of-run), (c) by tests. Capture is
 * async-safe with respect to the tracer: it takes no tracer locks and
 * reads only relaxed atomics (countersSnapshot, slotStates, journal
 * snapshot), so it works even while producers are live or a resize is
 * wedged mid-quiesce — exactly the states worth post-morteming. The
 * file write itself uses stdio and is not signal-safe; call it from a
 * thread, not a signal handler.
 */

#ifndef BTRACE_OBS_FLIGHT_RECORDER_H
#define BTRACE_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/btrace.h"
#include "obs/journal.h"

namespace btrace {

struct FlightRecorderOptions
{
    /** Bundle file path; empty disables dump() (render still works). */
    std::string path;
    /** Journal tail length included in the bundle. */
    std::size_t lastN = 256;
};

class FlightRecorder
{
  public:
    /**
     * @p journal may be null (bundle then has an empty journal
     * section). Both referents must outlive the recorder.
     */
    FlightRecorder(BTrace &tracer, const EventJournal *journal,
                   FlightRecorderOptions options);

    /** Render the bundle JSON without touching the filesystem. */
    std::string render(const std::string &trigger) const;

    /**
     * Capture and write the bundle to options.path, overwriting any
     * previous bundle (the latest trip is the one worth keeping).
     * Returns false when the path is empty or the write failed.
     */
    bool dump(const std::string &trigger);

    /** Bundles successfully written so far. */
    uint64_t dumps() const
    {
        return written.load(std::memory_order_relaxed);
    }

  private:
    BTrace &bt;
    const EventJournal *jnl;
    FlightRecorderOptions opt;
    std::atomic<uint64_t> written{0};
};

/** parseFlightBundle() result: the decoded view of one bundle file. */
struct ParsedFlightBundle
{
    bool ok = false;
    std::string error;  //!< first problem found when !ok
    std::string trigger;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    /** Per-slot state: field name → value, one map per metadata slot. */
    std::vector<std::map<std::string, double>> slots;
    uint64_t journalEmitted = 0;
    /** Journal tail; kind is the snake_case name, reason set for closes. */
    struct Event
    {
        std::string kind;
        std::string reason;  //!< block_close only, else empty
        uint64_t tsc = 0;
        uint64_t seq = 0;
        uint64_t block = 0;
        uint64_t arg = 0;
        uint32_t tid = 0;
        uint32_t core = 0;
    };
    std::vector<Event> journal;
};

/** Parse a bundle previously produced by FlightRecorder::render(). */
ParsedFlightBundle parseFlightBundle(const std::string &text);

} // namespace btrace

#endif // BTRACE_OBS_FLIGHT_RECORDER_H
