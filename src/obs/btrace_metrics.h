/**
 * @file
 * BTrace → MetricsRegistry adapter (DESIGN.md §8).
 *
 * BTraceObs owns a registry populated with everything a dashboard
 * needs from one live BTrace instance:
 *
 *  - the raw event counters (as Prometheus counters, `_total` names),
 *    read through BTraceCounters::Snapshot so each collect() sees one
 *    coherent copy instead of fifteen independently torn loads;
 *  - derived gauges: effectivity ratio (fraction of opened block
 *    bytes carrying real entries rather than dummies/headers),
 *    dummy-byte overhead fraction, leased-outstanding bytes, consumer
 *    lag in positions, head position, capacity/resident bytes, and
 *    the per-metadata-slot occupancy tallies (complete / open /
 *    incomplete, §3.2);
 *  - the attached TracerObserver's latency histograms and its
 *    obs-overhead sample counter, when one is provided.
 *
 * The adapter also builds the watchdog's HealthInput, and tracks the
 * consumer position: a streaming consumer calls noteConsumerPosition()
 * after each incremental read, which arms the lag gauge and the
 * ConsumerLagGrowth heuristic. Every callback is safe against live
 * producers (atomic reads only).
 */

#ifndef BTRACE_OBS_BTRACE_METRICS_H
#define BTRACE_OBS_BTRACE_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>

#include "core/btrace.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/watchdog.h"
#include "trace/observer.h"

namespace btrace {

/**
 * Export a CostProfiler into @p reg as the `btrace_profile_*` family:
 * one `btrace_profile_<phase>_ns` histogram per fast-path phase, a
 * `btrace_profile_samples_total` counter (probes across all phases),
 * and the `btrace_profile_ns_per_tick` / `btrace_profile_probe_overhead_ns`
 * calibration gauges. @p profiler must outlive @p reg's collectors.
 */
void registerProfilerMetrics(MetricsRegistry &reg,
                             const CostProfiler &profiler);

/** Knobs of the adapter. */
struct BTraceObsOptions
{
    std::string prefix = "btrace";  //!< metric name prefix
};

/** Registry + health-input provider for one BTrace instance. */
class BTraceObs
{
  public:
    explicit BTraceObs(BTrace &tracer,
                       TracerObserver *observer = nullptr,
                       BTraceObsOptions options = {});

    MetricsRegistry &registry() { return reg; }
    const MetricsRegistry &registry() const { return reg; }

    /**
     * Record the consumer's cursor after an incremental read. Arms
     * the consumer-lag gauge (head position minus noted position) and
     * the watchdog's lag heuristic; before the first note, the lag
     * gauge reports the full head position (nothing consumed yet) and
     * the lag heuristic stays disarmed.
     */
    void
    noteConsumerPosition(uint64_t pos)
    {
        consumerPos.store(pos, std::memory_order_relaxed);
        consumerSeen.store(true, std::memory_order_relaxed);
    }

    /** Current lag gauge value, in positions. */
    double consumerLagPositions() const;

    /** Build the watchdog's per-interval input (seq/t left to caller). */
    HealthInput healthInput() const;

    /**
     * Effectivity ratio (§3/§4): of all bytes in blocks the tracer
     * opened (advances x blockSize), the fraction carrying normal
     * entries — i.e. not block headers and not dummy fill. 1.0 until
     * the first advancement.
     */
    static double effectivityRatio(const BTraceCounters::Snapshot &s,
                                   std::size_t block_size);

    /** Dummy fill as a fraction of opened block bytes. */
    static double dummyOverheadFraction(
        const BTraceCounters::Snapshot &s, std::size_t block_size);

  private:
    BTrace &bt;
    TracerObserver *obs;
    MetricsRegistry reg;
    std::atomic<uint64_t> consumerPos{0};
    std::atomic<bool> consumerSeen{false};
};

} // namespace btrace

#endif // BTRACE_OBS_BTRACE_METRICS_H
