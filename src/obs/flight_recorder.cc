#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/export.h"
#include "obs/json_reader.h"

namespace btrace {

namespace {

void
appendU64(std::string &out, const char *key, uint64_t v, bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                  comma ? "," : "");
    out += buf;
}

/** §3.2 classification of one raw slot, mirroring occupancy(). */
const char *
slotStateName(const MetaSlotState &s, std::size_t cap)
{
    if (s.confPos >= cap) return "complete";
    if (s.allocRnd == s.confRnd && s.allocPos == s.confPos) return "open";
    return "incomplete";
}

} // namespace

FlightRecorder::FlightRecorder(BTrace &tracer, const EventJournal *journal,
                               FlightRecorderOptions options)
    : bt(tracer), jnl(journal), opt(std::move(options))
{
}

std::string
FlightRecorder::render(const std::string &trigger) const
{
    // Capture order matters loosely: journal tail last, so the events
    // explaining the counters/slots we just read are least likely to
    // have been overwritten in between. Everything here is relaxed
    // atomic reads — no tracer locks, safe while a resize is wedged.
    const BTraceCounters::Snapshot c = bt.countersSnapshot();
    const ActiveBlockOccupancy occ = bt.occupancy();
    const std::vector<MetaSlotState> slots = bt.slotStates();
    const std::size_t cap = bt.config().blockSize;

    std::string out;
    out.reserve(4096);
    out += "{\"bundle\":\"btrace-flight-v1\",";
    out += "\"trigger\":\"" + jsonEscape(trigger) + "\",";

    out += "\"counters\":{";
    appendU64(out, "fast_allocs", c.fastAllocs);
    appendU64(out, "boundary_fills", c.boundaryFills);
    appendU64(out, "stale_allocs", c.staleAllocs);
    appendU64(out, "advances", c.advances);
    appendU64(out, "skips", c.skips);
    appendU64(out, "closes", c.closes);
    appendU64(out, "lock_races", c.lockRaces);
    appendU64(out, "core_races", c.coreRaces);
    appendU64(out, "would_block", c.wouldBlock);
    appendU64(out, "dummy_bytes", c.dummyBytes);
    appendU64(out, "resizes", c.resizes);
    appendU64(out, "shared_rmws", c.sharedRmws);
    appendU64(out, "leases", c.leases);
    appendU64(out, "lease_entries", c.leaseEntries);
    appendU64(out, "leased_outstanding", c.leasedOutstanding, false);
    out += "},";

    out += "\"gauges\":{";
    appendU64(out, "head_position", bt.headPosition());
    appendU64(out, "capacity_bytes", bt.capacityBytes());
    appendU64(out, "resident_bytes", bt.residentBytes());
    appendU64(out, "blocks_complete", occ.complete);
    appendU64(out, "blocks_open", occ.open);
    appendU64(out, "blocks_incomplete", occ.incomplete, false);
    out += "},";

    out += "\"slots\":[";
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const MetaSlotState &s = slots[i];
        if (i != 0) out += ",";
        out += "{";
        appendU64(out, "slot", i);
        appendU64(out, "alloc_rnd", s.allocRnd);
        appendU64(out, "alloc_pos", s.allocPos);
        appendU64(out, "conf_rnd", s.confRnd);
        appendU64(out, "conf_pos", s.confPos);
        out += "\"state\":\"";
        out += slotStateName(s, cap);
        out += "\"}";
    }
    out += "],";

    const std::vector<JournalRecord> tail =
        jnl != nullptr ? jnl->lastN(opt.lastN)
                       : std::vector<JournalRecord>{};
    appendU64(out, "journal_emitted", jnl != nullptr ? jnl->emitted() : 0);
    out += "\"journal\":[";
    for (std::size_t i = 0; i < tail.size(); ++i) {
        const JournalRecord &r = tail[i];
        if (i != 0) out += ",";
        out += "{\"kind\":\"";
        out += journalEventKindName(r.kind);
        out += "\",";
        if (r.kind == JournalEventKind::BlockClose) {
            out += "\"reason\":\"";
            out += blockCloseReasonName(
                static_cast<BlockCloseReason>(r.arg));
            out += "\",";
        }
        appendU64(out, "tsc", r.tsc);
        appendU64(out, "seq", r.seq);
        appendU64(out, "tid", r.tid);
        appendU64(out, "core", r.core);
        appendU64(out, "block", r.block);
        appendU64(out, "arg", r.arg, false);
        out += "}";
    }
    out += "]}";
    return out;
}

bool
FlightRecorder::dump(const std::string &trigger)
{
    if (opt.path.empty())
        return false;
    const std::string bundle = render(trigger);
    std::FILE *f = std::fopen(opt.path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t n =
        std::fwrite(bundle.data(), 1, bundle.size(), f);
    const bool closed = std::fclose(f) == 0;
    const bool ok = n == bundle.size() && closed;
    if (ok)
        written.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

ParsedFlightBundle
parseFlightBundle(const std::string &text)
{
    ParsedFlightBundle out;
    JsonValue root;
    JsonReader reader(text);
    if (!reader.parse(root) || root.type != JsonValue::Type::Object) {
        out.error = reader.error.empty() ? "not a JSON object"
                                         : reader.error;
        return out;
    }

    const JsonValue *magic = root.find("bundle");
    if (magic == nullptr || magic->type != JsonValue::Type::String ||
        magic->str != "btrace-flight-v1") {
        out.error = "missing or unknown bundle marker";
        return out;
    }
    if (const JsonValue *t = root.find("trigger");
        t != nullptr && t->type == JsonValue::Type::String)
        out.trigger = t->str;

    const auto numberMap = [&](const char *key,
                               std::map<std::string, double> &dst) {
        const JsonValue *v = root.find(key);
        if (v == nullptr) return true;
        if (v->type != JsonValue::Type::Object) return false;
        for (const auto &kv : v->obj) {
            if (kv.second.type != JsonValue::Type::Number) return false;
            dst[kv.first] = kv.second.num;
        }
        return true;
    };
    if (!numberMap("counters", out.counters) ||
        !numberMap("gauges", out.gauges)) {
        out.error = "non-numeric counter/gauge value";
        return out;
    }

    if (const JsonValue *v = root.find("slots")) {
        if (v->type != JsonValue::Type::Array) {
            out.error = "slots not an array";
            return out;
        }
        for (const JsonValue &e : v->arr) {
            if (e.type != JsonValue::Type::Object) {
                out.error = "slot entry not an object";
                return out;
            }
            std::map<std::string, double> slot;
            for (const auto &kv : e.obj) {
                if (kv.second.type == JsonValue::Type::Number)
                    slot[kv.first] = kv.second.num;
            }
            out.slots.push_back(std::move(slot));
        }
    }

    if (const JsonValue *v = root.find("journal_emitted");
        v != nullptr && v->type == JsonValue::Type::Number)
        out.journalEmitted = static_cast<uint64_t>(v->num);

    if (const JsonValue *v = root.find("journal")) {
        if (v->type != JsonValue::Type::Array) {
            out.error = "journal not an array";
            return out;
        }
        for (const JsonValue &e : v->arr) {
            const JsonValue *kind =
                e.type == JsonValue::Type::Object ? e.find("kind")
                                                  : nullptr;
            if (kind == nullptr ||
                kind->type != JsonValue::Type::String) {
                out.error = "journal entry without kind";
                return out;
            }
            ParsedFlightBundle::Event ev;
            ev.kind = kind->str;
            if (const JsonValue *r = e.find("reason");
                r != nullptr && r->type == JsonValue::Type::String)
                ev.reason = r->str;
            const auto num = [&](const char *key) -> uint64_t {
                const JsonValue *n = e.find(key);
                return n != nullptr &&
                               n->type == JsonValue::Type::Number
                           ? static_cast<uint64_t>(n->num)
                           : 0;
            };
            ev.tsc = num("tsc");
            ev.seq = num("seq");
            ev.block = num("block");
            ev.arg = num("arg");
            ev.tid = static_cast<uint32_t>(num("tid"));
            ev.core = static_cast<uint32_t>(num("core"));
            out.journal.push_back(std::move(ev));
        }
    }

    out.ok = true;
    return out;
}

} // namespace btrace
