#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "obs/export.h"
#include "obs/json_reader.h"

namespace btrace {

namespace {

/**
 * Bounded JSON writer over a caller-owned buffer: the async-safe
 * capture path formats with this instead of std::string/iostreams, so
 * a watchdog trip under memory exhaustion still renders. Overflow
 * truncates silently; the recorder sizes its buffer so it never does.
 */
class BufWriter
{
  public:
    BufWriter(char *dst, std::size_t capacity) : d(dst), cap(capacity) {}

    void
    raw(const char *s) noexcept
    {
        while (*s != '\0')
            put(*s++);
    }

    /** JSON string body: escapes quotes, backslashes, and controls. */
    void
    escaped(const char *s) noexcept
    {
        static const char hex[] = "0123456789abcdef";
        for (; *s != '\0'; ++s) {
            const auto c = static_cast<unsigned char>(*s);
            if (c == '"' || c == '\\') {
                put('\\');
                put(static_cast<char>(c));
            } else if (c < 0x20) {
                raw("\\u00");
                put(hex[c >> 4]);
                put(hex[c & 0xf]);
            } else {
                put(static_cast<char>(c));
            }
        }
    }

    void
    u64(uint64_t v) noexcept
    {
        char digits[20];
        std::size_t n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n > 0)
            put(digits[--n]);
    }

    /** `"key":<v>` with an optional trailing comma. */
    void
    kvU64(const char *key, uint64_t v, bool comma = true) noexcept
    {
        put('"');
        raw(key);
        raw("\":");
        u64(v);
        if (comma)
            put(',');
    }

    std::size_t size() const noexcept { return len; }

  private:
    void
    put(char c) noexcept
    {
        if (len < cap)
            d[len++] = c;
    }

    char *d;
    std::size_t cap;
    std::size_t len = 0;
};

/** §3.2 classification of one raw slot, mirroring occupancy(). */
const char *
slotStateName(const MetaSlotState &s, std::size_t cap)
{
    if (s.confPos >= cap) return "complete";
    if (s.allocRnd == s.confRnd && s.allocPos == s.confPos) return "open";
    return "incomplete";
}

/** write(2) until done; EINTR-safe, allocation-free. */
bool
writeFully(int fd, const char *buf, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, buf, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        buf += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

FlightRecorder::FlightRecorder(BTrace &tracer, const EventJournal *journal,
                               FlightRecorderOptions options)
    : bt(tracer), jnl(journal), opt(std::move(options))
{
    // Size every capture buffer now; the dump path must never touch
    // the allocator (DESIGN.md §9).
    slotScratch.resize(bt.config().activeBlocks);
    jnlScratch.resize(jnl != nullptr ? jnl->capacity() : 0);
    renderBuf.resize(4096 + 192 * slotScratch.size() + 256 * opt.lastN);
}

std::string
FlightRecorder::render(const std::string &trigger) const
{
    std::string out(renderBuf.size(), '\0');
    out.resize(renderInto(out.data(), out.size(), trigger.c_str()));
    return out;
}

std::size_t
FlightRecorder::renderInto(char *dst, std::size_t cap,
                           const char *trigger) const noexcept
{
    // Capture order matters loosely: journal tail last, so the events
    // explaining the counters/slots we just read are least likely to
    // have been overwritten in between. Everything here is relaxed
    // atomic reads — no tracer locks, safe while a resize is wedged.
    const BTraceCounters::Snapshot c = bt.countersSnapshot();
    const ActiveBlockOccupancy occ = bt.occupancy();
    const std::size_t nslots =
        bt.slotStatesInto(slotScratch.data(), slotScratch.size());
    const std::size_t block_cap = bt.config().blockSize;

    BufWriter w(dst, cap);
    w.raw("{\"bundle\":\"btrace-flight-v1\",");
    w.raw("\"trigger\":\"");
    w.escaped(trigger);
    w.raw("\",");

    w.raw("\"counters\":{");
    w.kvU64("fast_allocs", c.fastAllocs);
    w.kvU64("boundary_fills", c.boundaryFills);
    w.kvU64("stale_allocs", c.staleAllocs);
    w.kvU64("advances", c.advances);
    w.kvU64("skips", c.skips);
    w.kvU64("closes", c.closes);
    w.kvU64("lock_races", c.lockRaces);
    w.kvU64("core_races", c.coreRaces);
    w.kvU64("would_block", c.wouldBlock);
    w.kvU64("dummy_bytes", c.dummyBytes);
    w.kvU64("resizes", c.resizes);
    w.kvU64("shared_rmws", c.sharedRmws);
    w.kvU64("leases", c.leases);
    w.kvU64("lease_entries", c.leaseEntries);
    w.kvU64("leased_outstanding", c.leasedOutstanding, false);
    w.raw("},");

    w.raw("\"gauges\":{");
    w.kvU64("head_position", bt.headPosition());
    w.kvU64("capacity_bytes", bt.capacityBytes());
    w.kvU64("resident_bytes", bt.residentBytes());
    w.kvU64("blocks_complete", occ.complete);
    w.kvU64("blocks_open", occ.open);
    w.kvU64("blocks_incomplete", occ.incomplete, false);
    w.raw("},");

    w.raw("\"slots\":[");
    for (std::size_t i = 0; i < nslots; ++i) {
        const MetaSlotState &s = slotScratch[i];
        if (i != 0) w.raw(",");
        w.raw("{");
        w.kvU64("slot", i);
        w.kvU64("alloc_rnd", s.allocRnd);
        w.kvU64("alloc_pos", s.allocPos);
        w.kvU64("conf_rnd", s.confRnd);
        w.kvU64("conf_pos", s.confPos);
        w.raw("\"state\":\"");
        w.raw(slotStateName(s, block_cap));
        w.raw("\"}");
    }
    w.raw("],");

    std::size_t ntail = jnl != nullptr
                            ? jnl->snapshotInto(jnlScratch.data(),
                                                jnlScratch.size())
                            : 0;
    std::size_t first = 0;
    if (ntail > opt.lastN)
        first = ntail - opt.lastN;  // keep only the newest lastN
    w.kvU64("journal_emitted", jnl != nullptr ? jnl->emitted() : 0);
    w.raw("\"journal\":[");
    for (std::size_t i = first; i < ntail; ++i) {
        const JournalRecord &r = jnlScratch[i];
        if (i != first) w.raw(",");
        w.raw("{\"kind\":\"");
        w.raw(journalEventKindName(r.kind));
        w.raw("\",");
        if (r.kind == JournalEventKind::BlockClose) {
            w.raw("\"reason\":\"");
            w.raw(blockCloseReasonName(
                static_cast<BlockCloseReason>(r.arg)));
            w.raw("\",");
        }
        w.kvU64("tsc", r.tsc);
        w.kvU64("seq", r.seq);
        w.kvU64("tid", r.tid);
        w.kvU64("core", r.core);
        w.kvU64("block", r.block);
        w.kvU64("arg", r.arg, false);
        w.raw("}");
    }
    w.raw("]}");
    return w.size();
}

bool
FlightRecorder::dump(const char *trigger) noexcept
{
    const std::size_t n =
        renderInto(renderBuf.data(), renderBuf.size(), trigger);

    // Arena first: on an arena-backed tracer the flight region is the
    // copy that survives the process, so it must not depend on the
    // filesystem write below succeeding (no-op on private storage).
    bt.writeFlightToArena(renderBuf.data(), n);

    if (opt.path.empty())
        return false;
    const int fd = ::open(opt.path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    const bool wrote = writeFully(fd, renderBuf.data(), n);
    const bool closed = ::close(fd) == 0;
    const bool ok = wrote && closed;
    if (ok)
        written.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

ParsedFlightBundle
parseFlightBundle(const std::string &text)
{
    ParsedFlightBundle out;
    JsonValue root;
    JsonReader reader(text);
    if (!reader.parse(root) || root.type != JsonValue::Type::Object) {
        out.error = reader.error.empty() ? "not a JSON object"
                                         : reader.error;
        return out;
    }

    const JsonValue *magic = root.find("bundle");
    if (magic == nullptr || magic->type != JsonValue::Type::String ||
        magic->str != "btrace-flight-v1") {
        out.error = "missing or unknown bundle marker";
        return out;
    }
    if (const JsonValue *t = root.find("trigger");
        t != nullptr && t->type == JsonValue::Type::String)
        out.trigger = t->str;

    const auto numberMap = [&](const char *key,
                               std::map<std::string, double> &dst) {
        const JsonValue *v = root.find(key);
        if (v == nullptr) return true;
        if (v->type != JsonValue::Type::Object) return false;
        for (const auto &kv : v->obj) {
            if (kv.second.type != JsonValue::Type::Number) return false;
            dst[kv.first] = kv.second.num;
        }
        return true;
    };
    if (!numberMap("counters", out.counters) ||
        !numberMap("gauges", out.gauges)) {
        out.error = "non-numeric counter/gauge value";
        return out;
    }

    if (const JsonValue *v = root.find("slots")) {
        if (v->type != JsonValue::Type::Array) {
            out.error = "slots not an array";
            return out;
        }
        for (const JsonValue &e : v->arr) {
            if (e.type != JsonValue::Type::Object) {
                out.error = "slot entry not an object";
                return out;
            }
            std::map<std::string, double> slot;
            for (const auto &kv : e.obj) {
                if (kv.second.type == JsonValue::Type::Number)
                    slot[kv.first] = kv.second.num;
            }
            out.slots.push_back(std::move(slot));
        }
    }

    if (const JsonValue *v = root.find("journal_emitted");
        v != nullptr && v->type == JsonValue::Type::Number)
        out.journalEmitted = static_cast<uint64_t>(v->num);

    if (const JsonValue *v = root.find("journal")) {
        if (v->type != JsonValue::Type::Array) {
            out.error = "journal not an array";
            return out;
        }
        for (const JsonValue &e : v->arr) {
            const JsonValue *kind =
                e.type == JsonValue::Type::Object ? e.find("kind")
                                                  : nullptr;
            if (kind == nullptr ||
                kind->type != JsonValue::Type::String) {
                out.error = "journal entry without kind";
                return out;
            }
            ParsedFlightBundle::Event ev;
            ev.kind = kind->str;
            if (const JsonValue *r = e.find("reason");
                r != nullptr && r->type == JsonValue::Type::String)
                ev.reason = r->str;
            const auto num = [&](const char *key) -> uint64_t {
                const JsonValue *n = e.find(key);
                return n != nullptr &&
                               n->type == JsonValue::Type::Number
                           ? static_cast<uint64_t>(n->num)
                           : 0;
            };
            ev.tsc = num("tsc");
            ev.seq = num("seq");
            ev.block = num("block");
            ev.arg = num("arg");
            ev.tid = static_cast<uint32_t>(num("tid"));
            ev.core = static_cast<uint32_t>(num("core"));
            out.journal.push_back(std::move(ev));
        }
    }

    out.ok = true;
    return out;
}

} // namespace btrace
