/**
 * @file
 * Background stats sampler of the observability plane (DESIGN.md §8).
 *
 * A StatsSampler periodically collect()s a MetricsRegistry, turns each
 * collection into an ObsSample — cumulative counters, per-second rates
 * against the previous sample, gauges, histogram quantiles — and
 * (optionally) appends one JSON line per sample to a file and feeds a
 * HealthWatchdog. It keeps a bounded ring of recent samples for
 * in-process inspection (crash dumps, the `--metrics` pretty-printer).
 *
 * The sampler thread only ever reads atomics published by the traced
 * threads; it takes no lock shared with the tracer hot path, so
 * attaching it to a saturated producer workload perturbs nothing but
 * the cache lines it reads. sampleOnce() is also callable without
 * start() for single-shot exports and deterministic tests.
 */

#ifndef BTRACE_OBS_SAMPLER_H
#define BTRACE_OBS_SAMPLER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace btrace {

class EventJournal;

/** Sampler configuration. */
struct SamplerOptions
{
    double intervalSec = 1.0;   //!< background sampling period
    std::size_t ringSize = 64;  //!< recent samples retained
    std::string jsonPath;       //!< JSON-lines output; empty disables
    bool appendJson = false;    //!< append instead of truncate
    ObsLabels labels;           //!< attached to every sample
    WatchdogOptions watchdog;   //!< health heuristics sensitivity
};

/** Periodic registry snapshotter with rates, ring, and JSON output. */
class StatsSampler
{
  public:
    /** Produces the watchdog's raw input (e.g. BTraceObs::healthInput). */
    using HealthSource = std::function<HealthInput()>;

    explicit StatsSampler(const MetricsRegistry &registry,
                          SamplerOptions options = {});
    ~StatsSampler();

    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

    /** Enable the health watchdog; set before start(). */
    void setHealthSource(HealthSource source);

    /**
     * Mirror fired health events into a lifecycle journal as
     * WatchdogTrip records (arg = HealthKind), so a flight bundle's
     * journal tail shows the trip inline with the block transitions
     * that caused it. Set before start(); nullptr detaches.
     */
    void setJournal(EventJournal *journal);

    /**
     * Invoked once per fired health event, outside the sampler lock
     * (the hook may call back into sampler accessors or dump a flight
     * bundle). Set before start().
     */
    using HealthEventHook = std::function<void(const HealthEvent &)>;
    void setHealthEventHook(HealthEventHook hook);

    /** Launch the background thread (idempotent). */
    void start();

    /** Take a final sample and join the thread (idempotent). */
    void stop();

    /**
     * Take one sample synchronously: collect, compute rates, run the
     * watchdog, append to the ring and the JSON file. Thread-safe
     * against the background thread.
     */
    ObsSample sampleOnce();

    /** Copy of the retained ring, oldest first. */
    std::vector<ObsSample> recent() const;

    /** Samples taken so far (== next sample's seq). */
    uint64_t samplesTaken() const;

    /** Health events fired so far (empty without a health source). */
    std::vector<HealthEvent> healthHistory() const;

    const SamplerOptions &options() const { return opt; }

  private:
    void run();
    double nowSec() const;

    const MetricsRegistry &reg;
    SamplerOptions opt;

    mutable std::mutex mu;          //!< guards everything below
    std::condition_variable cv;
    bool running = false;
    bool stopRequested = false;
    std::thread worker;

    uint64_t nextSeq = 0;
    bool havePrev = false;
    double prevT = 0.0;
    std::vector<std::pair<std::string, double>> prevCounters;
    std::vector<ObsSample> ring;    //!< oldest first, <= opt.ringSize
    std::ofstream jsonOut;
    bool jsonOpened = false;

    HealthSource healthSrc;
    HealthWatchdog dog;
    EventJournal *journal = nullptr;
    HealthEventHook healthHook;

    std::chrono::steady_clock::time_point epoch;
};

} // namespace btrace

#endif // BTRACE_OBS_SAMPLER_H
