/**
 * @file
 * Lifecycle event journal of the observability plane (DESIGN.md §9).
 *
 * PR 4's metrics answer "how much"; when the watchdog trips they cannot
 * answer "in what order". The journal records the tracer's own
 * state-machine transitions — the paper's block closing (§3.2),
 * skipping (§3.4), implicit reclamation (§3.3) and resize (§4.4) are
 * exactly the events worth keeping — into a bounded, per-thread-sharded,
 * overwrite-oldest ring of fixed-size records. Dogfooding: the tracer
 * traces itself with the same block-buffer discipline it implements.
 *
 * Contract with the hot path: attaching a journal must not change the
 * tracer's shared-RMW footprint (the `sharedRmws` counter is asserted
 * byte-for-byte identical with and without an attached journal). emit()
 * therefore touches only the journal's own per-thread shard: one
 * relaxed fetch_add on the shard head plus relaxed field stores,
 * seqlock-stamped so a concurrent reader skips slots being overwritten.
 * Records are published with a release store of the sequence word and
 * every slot field is an atomic, so readers are race-free (TSan-clean)
 * without any lock — emit() is safe from any thread at any time, and
 * snapshot() is safe concurrently with live emitters (monitoring-grade:
 * a lapped slot is dropped, not torn).
 */

#ifndef BTRACE_OBS_JOURNAL_H
#define BTRACE_OBS_JOURNAL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace btrace {

/** Lifecycle transitions the tracer journals (DESIGN.md §9). */
enum class JournalEventKind : uint16_t
{
    BlockOpen = 0,  //!< advancement locked + stamped a fresh block
    BlockClose,     //!< block completed; arg = BlockCloseReason
    BlockSkip,      //!< candidate sacrificed to a straggler (§3.4)
    LeaseGrant,     //!< batched span granted; arg = bytes
    LeaseRevoke,    //!< lease closed early; arg = unused bytes returned
    LeaseAbandon,   //!< lease closed having served nothing; arg = bytes
    ReclaimStart,   //!< resize quiesce began (implicit reclamation §3.3)
    ReclaimEnd,     //!< every active block quiesced
    ResizeBegin,    //!< resize entered; arg = target block count
    ResizeFreeze,   //!< frozen bit in effect; advancement parked
    ResizeEnd,      //!< ratio swung and published; arg = new ratio
    ConsumerPass,   //!< incremental consumer read; arg = entries
    WatchdogTrip,   //!< health event fired; arg = HealthKind
    GovernorDecision, //!< control-plane actuation; arg = GovernorAction
    Count
};

/** Stable snake_case identifier (flight bundles, trace export). */
const char *journalEventKindName(JournalEventKind kind);

/** Why a block was closed (the BlockClose arg, §3.2/§4.3/§4.4). */
enum class BlockCloseReason : uint16_t
{
    Full = 0,   //!< tail dummy-filled when the block ran out (§4.1)
    Straggler,  //!< lagging round closed during advancement (§3.2)
    Graveyard,  //!< lost the core-install race; own block buried (§4.2)
    Consumer,   //!< consumer close_active shutdown (§4.3)
    Resize,     //!< resize quiesce close (§4.4)
    Count
};

const char *blockCloseReasonName(BlockCloseReason reason);

/**
 * One journal record. `block` is the global block position for block
 * events, the metadata slot for lease-close events, and the consumer
 * cursor for ConsumerPass; `arg` is kind-specific (see the enum).
 */
struct JournalRecord
{
    uint64_t tsc = 0;    //!< steady-clock ns at emit
    uint64_t seq = 0;    //!< per-shard emit sequence, 1-based
    uint64_t block = 0;  //!< kind-specific position / slot / cursor
    uint64_t arg = 0;    //!< kind-specific argument
    uint32_t tid = 0;    //!< stable small ordinal of the emitting thread
    uint16_t core = 0;   //!< producer core, or EventJournal::kNoCore
    uint16_t shard = 0;  //!< shard the record was written to
    JournalEventKind kind = JournalEventKind::BlockOpen;
};

/** Journal geometry. */
struct JournalOptions
{
    /** Shards; 0 picks a default sized for typical core counts. */
    std::size_t shards = 0;
    /** Ring slots per shard; rounded up to a power of two. */
    std::size_t recordsPerShard = 1024;
};

/** Bounded, sharded, overwrite-oldest ring of lifecycle records. */
class EventJournal
{
  public:
    /** `core` value for events with no producer core (consumer, resize). */
    static constexpr uint16_t kNoCore = 0xffff;

    explicit EventJournal(const JournalOptions &options = {});

    EventJournal(const EventJournal &) = delete;
    EventJournal &operator=(const EventJournal &) = delete;

    /**
     * Append one record to the calling thread's shard, overwriting the
     * oldest. Lock-free, allocation-free, relaxed-only; safe from any
     * thread, including concurrently with snapshot().
     */
    void emit(JournalEventKind kind, uint16_t core, uint64_t block,
              uint64_t arg) noexcept;

    /**
     * Merged copy of every live record, sorted by tsc. Slots being
     * overwritten mid-read are skipped, never returned torn.
     */
    std::vector<JournalRecord> snapshot() const;

    /**
     * Allocation-free snapshot for async-safe captures (the flight
     * recorder's watchdog-trip path): fill at most @p max records of
     * @p out, sorted by tsc, and return the count written. Records
     * beyond @p max are dropped arbitrarily — pass capacity() to get
     * everything.
     */
    std::size_t snapshotInto(JournalRecord *out,
                             std::size_t max) const noexcept;

    /** The most recent @p n records of snapshot(). */
    std::vector<JournalRecord> lastN(std::size_t n) const;

    /** Records emitted so far, including overwritten ones. */
    uint64_t emitted() const;

    /** Total ring slots (shards x recordsPerShard). */
    std::size_t capacity() const { return nShards * ringSize; }

    std::size_t shardCount() const { return nShards; }

    /** Stable small ordinal of the calling thread (shard selector). */
    static uint32_t currentTid();

  private:
    /**
     * One ring slot. seq doubles as the publication word: 0 while a
     * writer is mid-store (readers skip), idx+1 once complete.
     */
    struct Slot
    {
        std::atomic<uint64_t> seq{0};
        std::atomic<uint64_t> tsc{0};
        std::atomic<uint64_t> block{0};
        std::atomic<uint64_t> arg{0};
        std::atomic<uint64_t> meta{0};  //!< kind | core | tid packed
    };

    struct alignas(64) Shard
    {
        std::atomic<uint64_t> head{0};  //!< slots claimed so far
        std::unique_ptr<Slot[]> ring;
    };

    std::size_t nShards;
    std::size_t ringSize;  //!< power of two
    std::unique_ptr<Shard[]> shards;
};

} // namespace btrace

#endif // BTRACE_OBS_JOURNAL_H
