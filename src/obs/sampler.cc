#include "obs/sampler.h"

#include <algorithm>
#include <utility>

namespace btrace {

StatsSampler::StatsSampler(const MetricsRegistry &registry,
                           SamplerOptions options)
    : reg(registry), opt(std::move(options)), dog(opt.watchdog),
      epoch(std::chrono::steady_clock::now())
{
    if (opt.ringSize == 0) opt.ringSize = 1;
    if (opt.intervalSec <= 0.0) opt.intervalSec = 1.0;
}

StatsSampler::~StatsSampler()
{
    stop();
}

void
StatsSampler::setHealthSource(HealthSource source)
{
    std::lock_guard<std::mutex> lock(mu);
    healthSrc = std::move(source);
}

double
StatsSampler::nowSec() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
StatsSampler::start()
{
    std::lock_guard<std::mutex> lock(mu);
    if (running) return;
    running = true;
    stopRequested = false;
    worker = std::thread([this] { run(); });
}

void
StatsSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!running) return;
        stopRequested = true;
    }
    cv.notify_all();
    worker.join();
    {
        std::lock_guard<std::mutex> lock(mu);
        running = false;
        if (jsonOut.is_open()) jsonOut.flush();
    }
}

void
StatsSampler::run()
{
    std::unique_lock<std::mutex> lock(mu);
    while (!stopRequested) {
        const auto period = std::chrono::duration<double>(opt.intervalSec);
        if (cv.wait_for(lock, period, [this] { return stopRequested; }))
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
    lock.unlock();
    // Final sample so short runs always leave at least one record.
    sampleOnce();
}

ObsSample
StatsSampler::sampleOnce()
{
    // Collect outside the sampler lock: registry callbacks only touch
    // atomics, but there is no reason to serialize them with recent().
    const MetricsRegistry::Collected c = reg.collect();
    const double t = nowSec();

    std::unique_lock<std::mutex> lock(mu);
    ObsSample s;
    s.seq = nextSeq++;
    s.tSec = t;
    s.labels = opt.labels;
    s.histograms = c.histograms;
    for (const MetricValue &m : c.metrics) {
        if (m.kind == MetricKind::Counter)
            s.counters.emplace_back(m.name, m.value);
        else
            s.gauges.emplace_back(m.name, m.value);
    }

    // Per-second rates vs the previous sample, matched by name so a
    // registry that grows between samples degrades gracefully.
    if (havePrev) {
        const double dt = t - prevT;
        if (dt > 0.0) {
            for (const auto &kv : s.counters) {
                for (const auto &pv : prevCounters) {
                    if (pv.first != kv.first) continue;
                    s.rates.emplace_back(
                        kv.first,
                        std::max(0.0, kv.second - pv.second) / dt);
                    break;
                }
            }
        }
    }
    prevCounters = s.counters;
    prevT = t;
    havePrev = true;

    if (healthSrc) {
        HealthInput in = healthSrc();
        in.tSec = t;
        in.seq = s.seq;
        s.health = dog.observe(in);
    }

    ring.push_back(s);
    if (ring.size() > opt.ringSize)
        ring.erase(ring.begin(),
                   ring.begin() +
                       static_cast<long>(ring.size() - opt.ringSize));

    if (!opt.jsonPath.empty()) {
        if (!jsonOpened) {
            jsonOpened = true;
            jsonOut.open(opt.jsonPath, opt.appendJson
                                           ? std::ios::app
                                           : std::ios::trunc);
        }
        if (jsonOut.is_open()) {
            jsonOut << renderJsonLine(s) << '\n';
            jsonOut.flush();
        }
    }
    return s;
}

std::vector<ObsSample>
StatsSampler::recent() const
{
    std::lock_guard<std::mutex> lock(mu);
    return ring;
}

uint64_t
StatsSampler::samplesTaken() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nextSeq;
}

std::vector<HealthEvent>
StatsSampler::healthHistory() const
{
    std::lock_guard<std::mutex> lock(mu);
    return dog.history();
}

} // namespace btrace
