#include "obs/sampler.h"

#include <algorithm>
#include <utility>

#include "obs/journal.h"

namespace btrace {

StatsSampler::StatsSampler(const MetricsRegistry &registry,
                           SamplerOptions options)
    : reg(registry), opt(std::move(options)), dog(opt.watchdog),
      epoch(std::chrono::steady_clock::now())
{
    if (opt.ringSize == 0) opt.ringSize = 1;
    if (opt.intervalSec <= 0.0) opt.intervalSec = 1.0;
}

StatsSampler::~StatsSampler()
{
    stop();
}

void
StatsSampler::setHealthSource(HealthSource source)
{
    std::lock_guard<std::mutex> lock(mu);
    healthSrc = std::move(source);
}

void
StatsSampler::setJournal(EventJournal *j)
{
    std::lock_guard<std::mutex> lock(mu);
    journal = j;
}

void
StatsSampler::setHealthEventHook(HealthEventHook hook)
{
    std::lock_guard<std::mutex> lock(mu);
    healthHook = std::move(hook);
}

double
StatsSampler::nowSec() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void
StatsSampler::start()
{
    std::lock_guard<std::mutex> lock(mu);
    if (running) return;
    running = true;
    stopRequested = false;
    worker = std::thread([this] { run(); });
}

void
StatsSampler::stop()
{
    // Claim the worker under the lock so concurrent stop() calls are
    // idempotent: exactly one caller gets a joinable thread, the rest
    // see running == false (or an empty worker) and return.
    std::thread to_join;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!running) return;
        running = false;
        stopRequested = true;
        to_join = std::move(worker);
    }
    cv.notify_all();
    if (to_join.joinable()) to_join.join();
    std::lock_guard<std::mutex> lock(mu);
    if (jsonOut.is_open()) jsonOut.flush();
}

void
StatsSampler::run()
{
    // Absolute deadlines: a sampling pass that takes a while (large
    // registry, slow disk for the JSON line) must not stretch the
    // interval — the next deadline advances by exactly one period. If
    // a pass overruns a whole period, skip the missed beats instead of
    // firing a catch-up burst of back-to-back samples.
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(opt.intervalSec));
    auto deadline = std::chrono::steady_clock::now() + period;

    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        if (cv.wait_until(lock, deadline,
                          [this] { return stopRequested; }))
            break;
        lock.unlock();
        sampleOnce();
        deadline += period;
        const auto now = std::chrono::steady_clock::now();
        if (deadline <= now)
            deadline = now + period;
        lock.lock();
    }
    lock.unlock();
    // Final sample so short runs always leave at least one record.
    sampleOnce();
}

ObsSample
StatsSampler::sampleOnce()
{
    // Collect outside the sampler lock: registry callbacks only touch
    // atomics, but there is no reason to serialize them with recent().
    const MetricsRegistry::Collected c = reg.collect();
    const double t = nowSec();

    std::unique_lock<std::mutex> lock(mu);
    ObsSample s;
    s.seq = nextSeq++;
    s.tSec = t;
    s.labels = opt.labels;
    s.histograms = c.histograms;
    for (const MetricValue &m : c.metrics) {
        // Labeled series fold their labels into the key so families
        // like btraced_producer_records_total{producer="123"} stay
        // distinct in the flat JSON maps (and in rate matching).
        const std::string key = seriesKey(m.name, m.labels);
        if (m.kind == MetricKind::Counter)
            s.counters.emplace_back(key, m.value);
        else
            s.gauges.emplace_back(key, m.value);
    }

    // Per-second rates vs the previous sample, matched by name so a
    // registry that grows between samples degrades gracefully.
    if (havePrev) {
        const double dt = t - prevT;
        if (dt > 0.0) {
            for (const auto &kv : s.counters) {
                for (const auto &pv : prevCounters) {
                    if (pv.first != kv.first) continue;
                    s.rates.emplace_back(
                        kv.first,
                        std::max(0.0, kv.second - pv.second) / dt);
                    break;
                }
            }
        }
    }
    prevCounters = s.counters;
    prevT = t;
    havePrev = true;

    if (healthSrc) {
        HealthInput in = healthSrc();
        in.tSec = t;
        in.seq = s.seq;
        s.health = dog.observe(in);
    }

    ring.push_back(s);
    if (ring.size() > opt.ringSize)
        ring.erase(ring.begin(),
                   ring.begin() +
                       static_cast<long>(ring.size() - opt.ringSize));

    if (!opt.jsonPath.empty()) {
        if (!jsonOpened) {
            jsonOpened = true;
            jsonOut.open(opt.jsonPath, opt.appendJson
                                           ? std::ios::app
                                           : std::ios::trunc);
        }
        if (jsonOut.is_open()) {
            jsonOut << renderJsonLine(s) << '\n';
            jsonOut.flush();
        }
    }

    // Fan fired health events out to the journal and the hook after
    // releasing mu: the hook typically dumps a flight bundle, which
    // reads back through sampler accessors that take mu.
    EventJournal *const j = journal;
    const HealthEventHook hook = healthHook;
    lock.unlock();
    for (const HealthEvent &e : s.health) {
        if (j != nullptr)
            j->emit(JournalEventKind::WatchdogTrip,
                    EventJournal::kNoCore, 0,
                    uint64_t(static_cast<int>(e.kind)));
        if (hook) hook(e);
    }
    return s;
}

std::vector<ObsSample>
StatsSampler::recent() const
{
    std::lock_guard<std::mutex> lock(mu);
    return ring;
}

uint64_t
StatsSampler::samplesTaken() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nextSeq;
}

std::vector<HealthEvent>
StatsSampler::healthHistory() const
{
    std::lock_guard<std::mutex> lock(mu);
    return dog.history();
}

} // namespace btrace
