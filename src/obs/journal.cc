#include "obs/journal.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace btrace {

namespace {

/**
 * Steady-clock nanoseconds. The journal calls this "tsc": a monotonic
 * per-process tick, cheap enough for lifecycle-frequency events (block
 * transitions, not per-entry writes).
 */
uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Stable small integer id per thread, assigned once on first use —
 * same discipline as the latency histogram's shard selector, so a
 * thread keeps writing the same shard (and cache lines) for life.
 */
uint32_t
threadOrdinal()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

uint64_t
packMeta(JournalEventKind kind, uint16_t core, uint32_t tid)
{
    return (uint64_t(static_cast<uint16_t>(kind)) << 48) |
           (uint64_t(core) << 32) | uint64_t(tid);
}

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
}

} // namespace

const char *
journalEventKindName(JournalEventKind kind)
{
    switch (kind) {
      case JournalEventKind::BlockOpen: return "block_open";
      case JournalEventKind::BlockClose: return "block_close";
      case JournalEventKind::BlockSkip: return "block_skip";
      case JournalEventKind::LeaseGrant: return "lease_grant";
      case JournalEventKind::LeaseRevoke: return "lease_revoke";
      case JournalEventKind::LeaseAbandon: return "lease_abandon";
      case JournalEventKind::ReclaimStart: return "reclaim_start";
      case JournalEventKind::ReclaimEnd: return "reclaim_end";
      case JournalEventKind::ResizeBegin: return "resize_begin";
      case JournalEventKind::ResizeFreeze: return "resize_freeze";
      case JournalEventKind::ResizeEnd: return "resize_end";
      case JournalEventKind::ConsumerPass: return "consumer_pass";
      case JournalEventKind::WatchdogTrip: return "watchdog_trip";
      case JournalEventKind::GovernorDecision:
          return "governor_decision";
      case JournalEventKind::Count: break;
    }
    return "unknown";
}

const char *
blockCloseReasonName(BlockCloseReason reason)
{
    switch (reason) {
      case BlockCloseReason::Full: return "full";
      case BlockCloseReason::Straggler: return "straggler";
      case BlockCloseReason::Graveyard: return "graveyard";
      case BlockCloseReason::Consumer: return "consumer";
      case BlockCloseReason::Resize: return "resize";
      case BlockCloseReason::Count: break;
    }
    return "unknown";
}

uint32_t
EventJournal::currentTid()
{
    return threadOrdinal();
}

EventJournal::EventJournal(const JournalOptions &options)
{
    std::size_t want = options.shards;
    if (want == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        want = std::clamp<std::size_t>(hw, 2, 16);
    }
    nShards = want;
    ringSize = roundUpPow2(std::max<std::size_t>(options.recordsPerShard, 2));
    shards = std::make_unique<Shard[]>(nShards);
    for (std::size_t s = 0; s < nShards; ++s)
        shards[s].ring = std::make_unique<Slot[]>(ringSize);
}

void
EventJournal::emit(JournalEventKind kind, uint16_t core, uint64_t block,
                   uint64_t arg) noexcept
{
    const uint32_t tid = threadOrdinal();
    Shard &sh = shards[tid % nShards];
    // Claim a slot index. Threads sharing a shard contend only on this
    // word — never on anything the tracer's write path touches.
    const uint64_t idx = sh.head.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = sh.ring[idx & (ringSize - 1)];

    // Seqlock stamp: 0 marks the slot busy, so a concurrent snapshot
    // skips it instead of reading half-old, half-new fields.
    slot.seq.store(0, std::memory_order_release);
    slot.tsc.store(nowNs(), std::memory_order_relaxed);
    slot.block.store(block, std::memory_order_relaxed);
    slot.arg.store(arg, std::memory_order_relaxed);
    slot.meta.store(packMeta(kind, core, tid), std::memory_order_relaxed);
    slot.seq.store(idx + 1, std::memory_order_release);
}

std::vector<JournalRecord>
EventJournal::snapshot() const
{
    std::vector<JournalRecord> out(capacity());
    out.resize(snapshotInto(out.data(), out.size()));
    return out;
}

std::size_t
EventJournal::snapshotInto(JournalRecord *out, std::size_t max) const
    noexcept
{
    std::size_t n = 0;
    for (std::size_t s = 0; s < nShards && n < max; ++s) {
        const Shard &sh = shards[s];
        for (std::size_t i = 0; i < ringSize && n < max; ++i) {
            const Slot &slot = sh.ring[i];
            const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
            if (s1 == 0)
                continue;  // empty, or a writer is mid-store
            JournalRecord r;
            r.tsc = slot.tsc.load(std::memory_order_relaxed);
            r.block = slot.block.load(std::memory_order_relaxed);
            r.arg = slot.arg.load(std::memory_order_relaxed);
            const uint64_t meta =
                slot.meta.load(std::memory_order_relaxed);
            const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
            if (s2 != s1)
                continue;  // lapped mid-read; drop, never return torn
            r.seq = s1;
            r.kind = static_cast<JournalEventKind>(
                static_cast<uint16_t>(meta >> 48));
            r.core = static_cast<uint16_t>(meta >> 32);
            r.tid = static_cast<uint32_t>(meta);
            r.shard = static_cast<uint16_t>(s);
            out[n++] = r;
        }
    }
    // In-place introsort: no heap traffic, so the async capture path
    // stays allocation-free.
    std::sort(out, out + n,
              [](const JournalRecord &a, const JournalRecord &b) {
                  if (a.tsc != b.tsc) return a.tsc < b.tsc;
                  if (a.shard != b.shard) return a.shard < b.shard;
                  return a.seq < b.seq;
              });
    return n;
}

std::vector<JournalRecord>
EventJournal::lastN(std::size_t n) const
{
    std::vector<JournalRecord> all = snapshot();
    if (all.size() > n)
        all.erase(all.begin(),
                  all.begin() + static_cast<long>(all.size() - n));
    return all;
}

uint64_t
EventJournal::emitted() const
{
    uint64_t total = 0;
    for (std::size_t s = 0; s < nShards; ++s)
        total += shards[s].head.load(std::memory_order_relaxed);
    return total;
}

} // namespace btrace
