#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace btrace {

namespace {

/**
 * Format a metric value the way both wire formats want it: integral
 * values (the overwhelmingly common case — counters, bucket bounds)
 * without a fractional tail, everything else with enough digits to
 * round-trip a rate or ratio.
 */
std::string
formatValue(double v)
{
    char buf[40];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else if (std::isnan(v)) {
        std::snprintf(buf, sizeof(buf), "NaN");
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
}

void
appendKvs(std::string &out, const char *key,
          const std::vector<std::pair<std::string, double>> &kvs)
{
    out += "\"";
    out += key;
    out += "\":{";
    bool first = true;
    for (const auto &kv : kvs) {
        if (!first) out += ",";
        first = false;
        out += "\"" + jsonEscape(kv.first) + "\":" + formatValue(kv.second);
    }
    out += "}";
}

/** Render `{label="v",...}`; empty string when there are no labels. */
std::string
promLabels(const ObsLabels &labels, const std::string &extra = {})
{
    if (labels.empty() && extra.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto &kv : labels) {
        if (!first) out += ",";
        first = false;
        out += kv.first + "=\"";
        // Prometheus label escaping: backslash, quote, newline.
        for (char c : kv.second) {
            if (c == '\\') out += "\\\\";
            else if (c == '"') out += "\\\"";
            else if (c == '\n') out += "\\n";
            else out += c;
        }
        out += "\"";
    }
    if (!extra.empty()) {
        if (!first) out += ",";
        out += extra;
    }
    out += "}";
    return out;
}

// ---------------------------------------------------------------------
// Minimal JSON reader, scoped to what renderJsonLine() emits: objects,
// arrays, strings, numbers. No unicode escapes beyond pass-through.
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Type { Null, Number, String, Object, Array };
    Type type = Type::Null;
    double num = 0.0;
    std::string str;
    std::vector<std::pair<std::string, JsonValue>> obj;
    std::vector<JsonValue> arr;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key) return &kv.second;
        return nullptr;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out)) return false;
        skipWs();
        return pos == s.size();
    }

    std::string error;

  private:
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    fail(const char *why)
    {
        if (error.empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%s at offset %zu", why, pos);
            error = buf;
        }
        return false;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos >= s.size()) return fail("unexpected end");
        const char c = s[pos];
        if (c == '{') return object(out);
        if (c == '[') return array(out);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return string(out.str);
        }
        if (c == '-' || (c >= '0' && c <= '9')) return number(out);
        if (s.compare(pos, 4, "null") == 0) {
            pos += 4;
            out.type = JsonValue::Type::Null;
            return true;
        }
        return fail("unexpected token");
    }

    bool
    string(std::string &out)
    {
        if (s[pos] != '"') return fail("expected string");
        ++pos;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size()) return fail("bad escape");
                const char e = s[pos++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'u':
                    // Emitted only for control chars; decode latin-1
                    // range, which is all renderJsonLine() produces.
                    if (pos + 4 > s.size()) return fail("bad \\u");
                    out += static_cast<char>(
                        std::strtoul(s.substr(pos, 4).c_str(), nullptr,
                                     16));
                    pos += 4;
                    break;
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        if (pos >= s.size()) return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        out.num = std::strtod(start, &end);
        if (end == start) return fail("bad number");
        pos += static_cast<std::size_t>(end - start);
        out.type = JsonValue::Type::Number;
        return true;
    }

    bool
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key)) return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue v;
            if (!value(v)) return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue v;
            if (!value(v)) return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

bool
copyNumberMap(const JsonValue *v, std::map<std::string, double> &out)
{
    if (v == nullptr) return true; // section optional
    if (v->type != JsonValue::Type::Object) return false;
    for (const auto &kv : v->obj) {
        if (kv.second.type != JsonValue::Type::Number) return false;
        out[kv.first] = kv.second.num;
    }
    return true;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderJsonLine(const ObsSample &sample)
{
    std::string out;
    out.reserve(1024);
    char head[96];
    std::snprintf(head, sizeof(head), "{\"seq\":%" PRIu64 ",\"t_sec\":%.6f,",
                  sample.seq, sample.tSec);
    out += head;

    out += "\"labels\":{";
    bool first = true;
    for (const auto &kv : sample.labels) {
        if (!first) out += ",";
        first = false;
        out += "\"" + jsonEscape(kv.first) + "\":\"" +
               jsonEscape(kv.second) + "\"";
    }
    out += "},";

    appendKvs(out, "counters", sample.counters);
    out += ",";
    appendKvs(out, "rates", sample.rates);
    out += ",";
    appendKvs(out, "gauges", sample.gauges);
    out += ",";

    out += "\"histograms\":{";
    first = true;
    for (const HistogramValue &h : sample.histograms) {
        if (!first) out += ",";
        first = false;
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":{\"count\":%" PRIu64 ",\"p50\":%" PRIu64
                      ",\"p99\":%" PRIu64 ",\"p999\":%" PRIu64
                      ",\"max\":%" PRIu64 "}",
                      jsonEscape(h.name).c_str(), h.count, h.p50, h.p99,
                      h.p999, h.max);
        out += buf;
    }
    out += "},";

    out += "\"health\":[";
    first = true;
    for (const HealthEvent &e : sample.health) {
        if (!first) out += ",";
        first = false;
        out += "{\"kind\":\"";
        out += healthKindName(e.kind);
        out += "\",\"detail\":\"" + jsonEscape(e.detail) + "\"}";
    }
    out += "]}";
    return out;
}

std::string
renderPrometheus(const MetricsRegistry::Collected &collected,
                 const ObsLabels &labels)
{
    std::string out;
    out.reserve(2048);
    const std::string lbl = promLabels(labels);

    for (const MetricValue &m : collected.metrics) {
        out += "# HELP " + m.name + " " + m.help + "\n";
        out += "# TYPE " + m.name + " ";
        out += (m.kind == MetricKind::Counter) ? "counter" : "gauge";
        out += "\n";
        out += m.name + lbl + " " + formatValue(m.value) + "\n";
    }

    for (const HistogramValue &h : collected.histograms) {
        out += "# HELP " + h.name + " " + h.help + "\n";
        out += "# TYPE " + h.name + " summary\n";
        const struct { const char *q; uint64_t v; } qs[] = {
            {"0.5", h.p50}, {"0.99", h.p99}, {"0.999", h.p999}};
        for (const auto &q : qs) {
            out += h.name +
                   promLabels(labels,
                              std::string("quantile=\"") + q.q + "\"") +
                   " " + formatValue(static_cast<double>(q.v)) + "\n";
        }
        out += h.name + "_count" + lbl + " " +
               formatValue(static_cast<double>(h.count)) + "\n";
        out += h.name + "_max" + lbl + " " +
               formatValue(static_cast<double>(h.max)) + "\n";
    }
    return out;
}

ParsedObsLine
parseObsLine(const std::string &line)
{
    ParsedObsLine out;
    JsonValue root;
    JsonReader reader(line);
    if (!reader.parse(root) || root.type != JsonValue::Type::Object) {
        out.error = reader.error.empty() ? "not a JSON object"
                                         : reader.error;
        return out;
    }

    const JsonValue *seq = root.find("seq");
    const JsonValue *t = root.find("t_sec");
    if (seq == nullptr || seq->type != JsonValue::Type::Number ||
        t == nullptr || t->type != JsonValue::Type::Number) {
        out.error = "missing seq/t_sec";
        return out;
    }
    out.seq = static_cast<uint64_t>(seq->num);
    out.tSec = t->num;

    if (const JsonValue *v = root.find("labels")) {
        if (v->type != JsonValue::Type::Object) {
            out.error = "labels not an object";
            return out;
        }
        for (const auto &kv : v->obj) {
            if (kv.second.type != JsonValue::Type::String) {
                out.error = "label value not a string";
                return out;
            }
            out.labels[kv.first] = kv.second.str;
        }
    }

    if (!copyNumberMap(root.find("counters"), out.counters) ||
        !copyNumberMap(root.find("rates"), out.rates) ||
        !copyNumberMap(root.find("gauges"), out.gauges)) {
        out.error = "non-numeric counter/rate/gauge value";
        return out;
    }

    if (const JsonValue *v = root.find("histograms")) {
        if (v->type != JsonValue::Type::Object) {
            out.error = "histograms not an object";
            return out;
        }
        for (const auto &kv : v->obj) {
            if (!copyNumberMap(&kv.second, out.histograms[kv.first])) {
                out.error = "non-numeric histogram field";
                return out;
            }
        }
    }

    if (const JsonValue *v = root.find("health")) {
        if (v->type != JsonValue::Type::Array) {
            out.error = "health not an array";
            return out;
        }
        for (const JsonValue &e : v->arr) {
            const JsonValue *kind =
                e.type == JsonValue::Type::Object ? e.find("kind")
                                                  : nullptr;
            if (kind == nullptr ||
                kind->type != JsonValue::Type::String) {
                out.error = "health entry without kind";
                return out;
            }
            out.healthKinds.push_back(kind->str);
        }
    }

    out.ok = true;
    return out;
}

} // namespace btrace
