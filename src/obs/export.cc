#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>

#include "obs/json_reader.h"

namespace btrace {

namespace {

/**
 * Format a metric value the way both wire formats want it: integral
 * values (the overwhelmingly common case — counters, bucket bounds)
 * without a fractional tail, everything else with enough digits to
 * round-trip a rate or ratio.
 */
std::string
formatValue(double v)
{
    char buf[40];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else if (std::isnan(v)) {
        std::snprintf(buf, sizeof(buf), "NaN");
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
}

void
appendKvs(std::string &out, const char *key,
          const std::vector<std::pair<std::string, double>> &kvs)
{
    out += "\"";
    out += key;
    out += "\":{";
    bool first = true;
    for (const auto &kv : kvs) {
        if (!first) out += ",";
        first = false;
        out += "\"" + jsonEscape(kv.first) + "\":" + formatValue(kv.second);
    }
    out += "}";
}

/** Prometheus label-value escaping: backslash, quote, newline. */
void
promEscapeTo(std::string &out, const std::string &v)
{
    for (char c : v) {
        if (c == '\\') out += "\\\\";
        else if (c == '"') out += "\\\"";
        else if (c == '\n') out += "\\n";
        else out += c;
    }
}

/** Render `{label="v",...}`; empty string when there are no labels. */
std::string
promLabels(const ObsLabels &labels, const std::string &extra = {})
{
    if (labels.empty() && extra.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto &kv : labels) {
        if (!first) out += ",";
        first = false;
        out += kv.first + "=\"";
        promEscapeTo(out, kv.second);
        out += "\"";
    }
    if (!extra.empty()) {
        if (!first) out += ",";
        out += extra;
    }
    out += "}";
    return out;
}

/** Series labels (MetricValue::labels) as a promLabels `extra` run. */
std::string
seriesLabelRun(const MetricLabels &labels)
{
    std::string out;
    bool first = true;
    for (const auto &kv : labels) {
        if (!first) out += ",";
        first = false;
        out += kv.first + "=\"";
        promEscapeTo(out, kv.second);
        out += "\"";
    }
    return out;
}

bool
copyNumberMap(const JsonValue *v, std::map<std::string, double> &out)
{
    if (v == nullptr) return true; // section optional
    if (v->type != JsonValue::Type::Object) return false;
    for (const auto &kv : v->obj) {
        if (kv.second.type != JsonValue::Type::Number) return false;
        out[kv.first] = kv.second.num;
    }
    return true;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderJsonLine(const ObsSample &sample)
{
    std::string out;
    out.reserve(1024);
    char head[96];
    std::snprintf(head, sizeof(head), "{\"seq\":%" PRIu64 ",\"t_sec\":%.6f,",
                  sample.seq, sample.tSec);
    out += head;

    out += "\"labels\":{";
    bool first = true;
    for (const auto &kv : sample.labels) {
        if (!first) out += ",";
        first = false;
        out += "\"" + jsonEscape(kv.first) + "\":\"" +
               jsonEscape(kv.second) + "\"";
    }
    out += "},";

    appendKvs(out, "counters", sample.counters);
    out += ",";
    appendKvs(out, "rates", sample.rates);
    out += ",";
    appendKvs(out, "gauges", sample.gauges);
    out += ",";

    out += "\"histograms\":{";
    first = true;
    for (const HistogramValue &h : sample.histograms) {
        if (!first) out += ",";
        first = false;
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                      ",\"p50\":%" PRIu64 ",\"p99\":%" PRIu64
                      ",\"p999\":%" PRIu64 ",\"max\":%" PRIu64 "}",
                      jsonEscape(h.name).c_str(), h.count, h.sum,
                      h.p50, h.p99, h.p999, h.max);
        out += buf;
    }
    out += "},";

    out += "\"health\":[";
    first = true;
    for (const HealthEvent &e : sample.health) {
        if (!first) out += ",";
        first = false;
        out += "{\"kind\":\"";
        out += healthKindName(e.kind);
        out += "\",\"detail\":\"" + jsonEscape(e.detail) + "\"}";
    }
    out += "]}";
    return out;
}

std::string
renderPrometheus(const MetricsRegistry::Collected &collected,
                 const ObsLabels &labels)
{
    std::string out;
    out.reserve(2048);
    const std::string lbl = promLabels(labels);

    // A labeled family (several series sharing one name) must be
    // announced exactly once — duplicate # TYPE lines are invalid
    // exposition (and scripts/check_obs_schema.py rejects them).
    std::set<std::string> announced;
    for (const MetricValue &m : collected.metrics) {
        if (announced.insert(m.name).second) {
            out += "# HELP " + m.name + " " + m.help + "\n";
            out += "# TYPE " + m.name + " ";
            out += (m.kind == MetricKind::Counter) ? "counter"
                                                   : "gauge";
            out += "\n";
        }
        out += m.name + promLabels(labels, seriesLabelRun(m.labels)) +
               " " + formatValue(m.value) + "\n";
    }

    for (const HistogramValue &h : collected.histograms) {
        // Native Prometheus histogram: cumulative le-bounded buckets
        // (occupied buckets only — the log-linear grid is ~500 wide),
        // the mandatory +Inf bucket, then _sum and _count.
        out += "# HELP " + h.name + " " + h.help + "\n";
        out += "# TYPE " + h.name + " histogram\n";
        for (const auto &b : h.buckets) {
            out += h.name + "_bucket" +
                   promLabels(labels,
                              "le=\"" + formatValue(double(b.first)) +
                                  "\"") +
                   " " + formatValue(static_cast<double>(b.second)) +
                   "\n";
        }
        out += h.name + "_bucket" + promLabels(labels, "le=\"+Inf\"") +
               " " + formatValue(static_cast<double>(h.count)) + "\n";
        out += h.name + "_sum" + lbl + " " +
               formatValue(static_cast<double>(h.sum)) + "\n";
        out += h.name + "_count" + lbl + " " +
               formatValue(static_cast<double>(h.count)) + "\n";
    }
    return out;
}

ParsedObsLine
parseObsLine(const std::string &line)
{
    ParsedObsLine out;
    JsonValue root;
    JsonReader reader(line);
    if (!reader.parse(root) || root.type != JsonValue::Type::Object) {
        out.error = reader.error.empty() ? "not a JSON object"
                                         : reader.error;
        return out;
    }

    const JsonValue *seq = root.find("seq");
    const JsonValue *t = root.find("t_sec");
    if (seq == nullptr || seq->type != JsonValue::Type::Number ||
        t == nullptr || t->type != JsonValue::Type::Number) {
        out.error = "missing seq/t_sec";
        return out;
    }
    out.seq = static_cast<uint64_t>(seq->num);
    out.tSec = t->num;

    if (const JsonValue *v = root.find("labels")) {
        if (v->type != JsonValue::Type::Object) {
            out.error = "labels not an object";
            return out;
        }
        for (const auto &kv : v->obj) {
            if (kv.second.type != JsonValue::Type::String) {
                out.error = "label value not a string";
                return out;
            }
            out.labels[kv.first] = kv.second.str;
        }
    }

    if (!copyNumberMap(root.find("counters"), out.counters) ||
        !copyNumberMap(root.find("rates"), out.rates) ||
        !copyNumberMap(root.find("gauges"), out.gauges)) {
        out.error = "non-numeric counter/rate/gauge value";
        return out;
    }

    if (const JsonValue *v = root.find("histograms")) {
        if (v->type != JsonValue::Type::Object) {
            out.error = "histograms not an object";
            return out;
        }
        for (const auto &kv : v->obj) {
            if (!copyNumberMap(&kv.second, out.histograms[kv.first])) {
                out.error = "non-numeric histogram field";
                return out;
            }
        }
    }

    if (const JsonValue *v = root.find("health")) {
        if (v->type != JsonValue::Type::Array) {
            out.error = "health not an array";
            return out;
        }
        for (const JsonValue &e : v->arr) {
            const JsonValue *kind =
                e.type == JsonValue::Type::Object ? e.find("kind")
                                                  : nullptr;
            if (kind == nullptr ||
                kind->type != JsonValue::Type::String) {
                out.error = "health entry without kind";
                return out;
            }
            out.healthKinds.push_back(kind->str);
        }
    }

    out.ok = true;
    return out;
}

} // namespace btrace
