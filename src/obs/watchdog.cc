#include "obs/watchdog.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace btrace {

namespace {

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

const char *
healthKindName(HealthKind kind)
{
    switch (kind) {
      case HealthKind::StalledAdvancement:
        return "stalled_advancement";
      case HealthKind::LeaseStragglerWedge:
        return "lease_straggler_wedge";
      case HealthKind::ConsumerLagGrowth:
        return "consumer_lag_growth";
    }
    return "unknown";
}

std::vector<HealthEvent>
HealthWatchdog::observe(const HealthInput &in)
{
    std::vector<HealthEvent> out;
    if (!havePrev) {
        havePrev = true;
        prev = in;
        return out;
    }

    const BTraceCounters::Snapshot d = in.ctrs - prev.ctrs;

    // --- Stalled advancement -----------------------------------------
    // Writers are actively being turned away (wouldBlock rising) while
    // no advancement succeeds. A healthy saturated tracer still
    // advances; a wedged one does not.
    const bool stalled = d.wouldBlock >= opt.minWouldBlockRise &&
                         d.advances == 0;
    if (stalled) {
        ++stallStreak;
    } else {
        stallStreak = 0;
        stallLatched = false;
        wedgeLatched = false;
    }
    if (stallStreak >= opt.stallIntervals && !stallLatched) {
        stallLatched = true;
        out.push_back(HealthEvent{
            HealthKind::StalledAdvancement, in.seq,
            format("wouldBlock +%" PRIu64 " over %d intervals with "
                   "advances flat at %" PRIu64,
                   d.wouldBlock, stallStreak, in.ctrs.advances)});
    }

    // --- Lease straggler wedge (the PR 2 livelock signature) ---------
    // The stall co-occurring with leased bytes pinned outstanding and
    // no lease turnover: preempted owners are holding blocks
    // incomplete and nobody can advance past them.
    const bool wedged = stalled && in.ctrs.leasedOutstanding > 0 &&
                        d.leasedOutstanding == 0 && d.leases == 0;
    if (stallStreak >= opt.stallIntervals && wedged && !wedgeLatched) {
        wedgeLatched = true;
        out.push_back(HealthEvent{
            HealthKind::LeaseStragglerWedge, in.seq,
            format("%" PRIu64 " leased bytes outstanding and flat "
                   "while advancement is stalled",
                   in.ctrs.leasedOutstanding)});
    }

    // --- Consumer lag growth -----------------------------------------
    if (in.consumerActive &&
        in.consumerLagPositions > prev.consumerLagPositions) {
        ++lagStreak;
    } else {
        lagStreak = 0;
        lagLatched = false;
    }
    if (lagStreak >= opt.lagIntervals && !lagLatched) {
        lagLatched = true;
        out.push_back(HealthEvent{
            HealthKind::ConsumerLagGrowth, in.seq,
            format("consumer lag grew %d consecutive intervals to "
                   "%.0f positions",
                   lagStreak, in.consumerLagPositions)});
    }

    prev = in;
    fired.insert(fired.end(), out.begin(), out.end());
    return out;
}

} // namespace btrace
