#include "obs/profiler.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define BTRACE_HAVE_PERF_EVENT 1
#include <cerrno>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace btrace {

namespace {

uint64_t
monotonicRawNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
    return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
}

struct Calibration
{
    double nsPerTick = 1.0;
    uint64_t overheadTicks = 0;
};

/**
 * Measure ns-per-tick against CLOCK_MONOTONIC_RAW over a ~2 ms spin,
 * and the cost of one probe pair as the mean of back-to-back TSC
 * reads. TSC frequency is invariant on every post-2008 x86 part
 * (constant_tsc) and the aarch64 virtual counter is fixed-rate by
 * architecture, so one measurement per process is enough.
 */
Calibration
calibrate()
{
    Calibration c;
    const uint64_t t0 = monotonicRawNs();
    const uint64_t c0 = profilerTicks();
    while (monotonicRawNs() - t0 < 2000000)
        ;
    const uint64_t t1 = monotonicRawNs();
    const uint64_t c1 = profilerTicks();
    if (c1 > c0 && t1 > t0)
        c.nsPerTick = double(t1 - t0) / double(c1 - c0);

    constexpr int kProbes = 4096;
    uint64_t acc = 0;
    for (int i = 0; i < kProbes; ++i) {
        const uint64_t a = profilerTicks();
        const uint64_t b = profilerTicks();
        acc += b > a ? b - a : 0;
    }
    c.overheadTicks = acc / kProbes;
    return c;
}

const Calibration &
cachedCalibration()
{
    static const Calibration c = calibrate();
    return c;
}

} // namespace

const char *
profilePhaseName(ProfilePhase p)
{
    switch (p) {
    case ProfilePhase::Claim:
        return "claim";
    case ProfilePhase::Bump:
        return "bump";
    case ProfilePhase::Publish:
        return "publish";
    case ProfilePhase::Retry:
        return "retry";
    case ProfilePhase::LeaseRenew:
        return "lease_renew";
    case ProfilePhase::ControlPoll:
        return "control_poll";
    case ProfilePhase::Count_:
        break;
    }
    return "unknown";
}

CostProfiler::CostProfiler(unsigned shards)
    : hist{ConcurrentHistogram(shards), ConcurrentHistogram(shards),
           ConcurrentHistogram(shards), ConcurrentHistogram(shards),
           ConcurrentHistogram(shards), ConcurrentHistogram(shards)}
{
    static_assert(kProfilePhases == 6,
                  "update the hist initializer with the phase list");
    const Calibration &c = cachedCalibration();
    nsPerTickVal = c.nsPerTick;
    overheadTicksVal = c.overheadTicks;
}

ProfileSnapshot
CostProfiler::snapshot() const
{
    ProfileSnapshot s;
    s.nsPerTick = nsPerTickVal;
    s.probeOverheadNs = probeOverheadNs();
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const HistogramSnapshot h = hist[i].snapshot();
        PhaseStats &ps = s.phases[i];
        ps.count = h.total;
        ps.totalNs = h.sum;
        ps.meanNs = h.total > 0 ? double(h.sum) / double(h.total) : 0.0;
        ps.p50Ns = h.quantile(0.50);
        ps.p99Ns = h.quantile(0.99);
        ps.maxNs = h.maxValue();
    }
    return s;
}

void
CostProfiler::clear()
{
    for (ConcurrentHistogram &h : hist)
        h.clear();
}

uint64_t
ProfileSnapshot::samples() const
{
    uint64_t n = 0;
    for (const PhaseStats &p : phases)
        n += p.count;
    return n;
}

uint64_t
ProfileSnapshot::attributedNs() const
{
    uint64_t n = 0;
    for (const PhaseStats &p : phases)
        n += p.totalNs;
    return n;
}

std::string
ProfileSnapshot::table() const
{
    const uint64_t total = attributedNs();
    char line[160];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "%-12s %12s %10s %8s %8s %10s %10s %7s\n", "phase",
                  "count", "mean ns", "p50", "p99", "max ns",
                  "total us", "share");
    out += line;
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        const PhaseStats &p = phases[i];
        if (p.count == 0)
            continue;
        std::snprintf(
            line, sizeof(line),
            "%-12s %12" PRIu64 " %10.1f %8" PRIu64 " %8" PRIu64
            " %10" PRIu64 " %10.1f %6.1f%%\n",
            profilePhaseName(static_cast<ProfilePhase>(i)), p.count,
            p.meanNs, p.p50Ns, p.p99Ns, p.maxNs,
            double(p.totalNs) / 1e3,
            total > 0 ? 100.0 * double(p.totalNs) / double(total) : 0.0);
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "attributed %.3f ms over %" PRIu64
                  " probes (%.3f ns/tick, ~%.0f ns probe overhead "
                  "subtracted per sample)\n",
                  double(total) / 1e6, samples(), nsPerTick,
                  probeOverheadNs);
    out += line;
    return out;
}

#ifdef BTRACE_HAVE_PERF_EVENT

namespace {

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, 0ul);
}

int
openCounter(uint64_t config, int group_fd, std::string &err)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    const long fd = perfEventOpen(&attr, 0, -1, group_fd);
    if (fd < 0) {
        const int e = errno;
        const char *why =
            e == ENOSYS ? "syscall unavailable (ENOSYS)"
            : e == EACCES || e == EPERM
                ? "not permitted (perf_event_paranoid or seccomp)"
            : e == ENOENT || e == ENODEV
                ? "hardware event unsupported here"
                : std::strerror(e);
        err = std::string("perf_event_open: ") + why;
        return -1;
    }
    return int(fd);
}

} // namespace

ThreadPerfCounters::~ThreadPerfCounters()
{
    closeAll();
}

void
ThreadPerfCounters::closeAll()
{
    for (int &fd : fds) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
}

bool
ThreadPerfCounters::open()
{
    closeAll();
    fds[0] = openCounter(PERF_COUNT_HW_CPU_CYCLES, -1, err);
    if (fds[0] < 0)
        return false;
    fds[1] = openCounter(PERF_COUNT_HW_CACHE_MISSES, fds[0], err);
    fds[2] = fds[1] < 0 ? -1
                        : openCounter(PERF_COUNT_HW_BRANCH_MISSES,
                                      fds[0], err);
    if (fds[1] < 0 || fds[2] < 0) {
        // All-or-nothing: a partial group would silently report
        // zeros for the missing members.
        closeAll();
        return false;
    }
    ioctl(fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    err.clear();
    return true;
}

void
ThreadPerfCounters::reset()
{
    if (ok())
        ioctl(fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
}

PerfSample
ThreadPerfCounters::read() const
{
    PerfSample s;
    if (!ok())
        return s;
    struct
    {
        uint64_t nr;
        uint64_t values[3];
    } data{};
    if (::read(fds[0], &data, sizeof(data)) < 0 || data.nr < 3)
        return s;
    s.cycles = data.values[0];
    s.cacheMisses = data.values[1];
    s.branchMisses = data.values[2];
    return s;
}

#else // !BTRACE_HAVE_PERF_EVENT

ThreadPerfCounters::~ThreadPerfCounters() = default;

void
ThreadPerfCounters::closeAll()
{
}

bool
ThreadPerfCounters::open()
{
    err = "perf_event_open: not supported on this platform";
    return false;
}

void
ThreadPerfCounters::reset()
{
}

PerfSample
ThreadPerfCounters::read() const
{
    return {};
}

#endif // BTRACE_HAVE_PERF_EVENT

} // namespace btrace
