/**
 * @file
 * Append-only history of (position threshold, ratio) pairs.
 *
 * Resizing changes the Ratio and therefore the position → physical
 * block mapping (§3.3). Cold paths that must locate the data block of
 * a *past* round — closing a lagging block, filling the dummy
 * obligation after a stale fetch_add — need the ratio that was in
 * force when that round's position was handed out. The log is written
 * only under the resize mutex and published with a release store of
 * the entry count, so lock-free readers see complete entries.
 */

#ifndef BTRACE_CORE_RATIO_LOG_H
#define BTRACE_CORE_RATIO_LOG_H

#include <array>
#include <atomic>
#include <cstdint>

#include "common/panic.h"

namespace btrace {

/** Bounded history of ratio changes (entry 0 is the initial ratio). */
class RatioLog
{
  public:
    static constexpr std::size_t maxEntries = 256;

    /**
     * Stage an entry (writer side, under the resize mutex). Call
     * publish() once the change is committed to the global word.
     */
    void
    stage(uint64_t from_pos, uint32_t ratio)
    {
        const std::size_t n = count.load(std::memory_order_relaxed);
        BTRACE_ASSERT(n < maxEntries, "too many resizes for the log");
        entries[n].fromPos = from_pos;
        entries[n].ratio = ratio;
    }

    /** Re-stage the same ratio with an updated threshold (CAS retry). */
    void
    restage(uint64_t from_pos)
    {
        const std::size_t n = count.load(std::memory_order_relaxed);
        entries[n].fromPos = from_pos;
    }

    /** Make the staged entry visible to readers. */
    void
    publish()
    {
        count.fetch_add(1, std::memory_order_release);
    }

    /** Ratio in force for global position @p pos. */
    uint32_t
    ratioAt(uint64_t pos) const
    {
        const std::size_t n = count.load(std::memory_order_acquire);
        BTRACE_DASSERT(n > 0, "ratio log empty");
        for (std::size_t i = n; i-- > 0;) {
            if (entries[i].fromPos <= pos)
                return entries[i].ratio;
        }
        return entries[0].ratio;
    }

    std::size_t size() const
    {
        return count.load(std::memory_order_acquire);
    }

  private:
    struct Entry
    {
        uint64_t fromPos = 0;
        uint32_t ratio = 1;
    };

    std::array<Entry, maxEntries> entries{};
    std::atomic<std::size_t> count{0};
};

} // namespace btrace

#endif // BTRACE_CORE_RATIO_LOG_H
