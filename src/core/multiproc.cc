/**
 * @file
 * Multi-process plumbing of BTrace (DESIGN.md §11): attaching to an
 * existing arena, the producer attach registry, the lease-owner table,
 * and the dead-owner sweeper that reclaims leases from crashed
 * producers.
 *
 * Everything here is the robustness plane of the tracer: none of it
 * runs on the private backend and none of it touches the §4.1 write
 * protocol's shared words outside the reclamation path — the
 * sharedRmws counter never moves on behalf of this file's
 * registry/table traffic.
 */

#include "core/btrace.h"

#include <cerrno>
#include <csignal>

#include <unistd.h>

namespace btrace {

namespace {

/** Liveness probe: does @p pid name an existing process? */
bool
processExists(uint32_t pid)
{
    if (pid == 0)
        return false;
    // kill(pid, 0) delivers nothing; EPERM still proves existence.
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

} // namespace

BTrace::BTrace(AttachTag, std::unique_ptr<StorageBackend> backend,
               const BTraceConfig &derived, const CostModel &model)
    : Tracer(model), cfg(derived), cap(derived.blockSize),
      numActive(derived.activeBlocks),
      maxN(derived.effectiveMaxBlocks()), span(std::move(backend))
{
    pid_ = static_cast<uint32_t>(::getpid());
    owner_ = false;
    bindControl();
    BTRACE_ASSERT(shared, "attach constructor needs a control region");
    attachGen = span.backend()->attachGeneration();

    // The RatioLog is per-process: seed it with the arena's current
    // ratio so position -> physical resolution works for everything
    // this attachment hands out or reads from now on. Positions minted
    // under a *different* pre-attach ratio (the owner resized before
    // we got here) would mis-resolve, which is why resize requires a
    // sole attachment and why attachments of a freshly resized arena
    // should only trust positions >= the head at attach time.
    const RatioPos g =
        RatioPos::unpack(global->load(std::memory_order_acquire));
    ratioLog.stage(0, g.ratio);
    ratioLog.publish();

    span.commit(0, numActive * g.ratio * cap);

    // Adopt the owner's published control version (or defaults when
    // the page predates any publish); pollControl() converges later.
    plane = std::make_unique<ControlPlane>(
        *this, ControlGeometry{numActive, maxN}, ctrl.page,
        /*owner_init=*/false, cfg.control);
}

Expected<std::unique_ptr<BTrace>>
BTrace::attachArena(std::unique_ptr<StorageBackend> backend,
                    const CostModel &model)
{
    if (backend == nullptr)
        return errInvalidArgument("attachArena: null storage backend");
    const ArenaHeader *h = backend->header();
    if (h == nullptr)
        return errUnsupported(
            "attachArena: backend has no arena header (private "
            "memory cannot be shared)");
    uint8_t *ctrl_base = backend->ctrlRegion();
    if (ctrl_base == nullptr)
        return errIncompatible(
            "attachArena: arena has no control region (created "
            "without a tracer, or by an older version)");

    const auto *chdr = reinterpret_cast<ControlHeader *>(ctrl_base);
    if (chdr->magic == 0)
        // All-zero magic is what a racing attacher sees between the
        // owner's ftruncate and its header stamp: still initializing,
        // not corrupt — report Busy so callers know to retry.
        return errBusy(
            "attachArena: control region still initializing");
    if (chdr->magic != ControlHeader::kMagic)
        return errCorruption(
            "attachArena: bad control-region magic");
    if (chdr->version != ControlHeader::kVersion)
        return errIncompatible(
            "attachArena: unsupported control-region version");
    if (chdr->ready.load(std::memory_order_acquire) != 1)
        return errBusy(
            "attachArena: arena owner has not finished initializing "
            "(or died mid-create)");

    const uint64_t block = h->blockSize.load(std::memory_order_acquire);
    const uint64_t active =
        h->activeBlocks.load(std::memory_order_acquire);
    const uint64_t num = h->numBlocks.load(std::memory_order_acquire);
    if (block == 0 || active == 0 || num == 0)
        return errCorruption(
            "attachArena: arena header has zero geometry");
    if (chdr->activeBlocks != active || chdr->cores == 0)
        return errCorruption(
            "attachArena: control region disagrees with the arena "
            "header about the geometry");
    if (ctrlBytesFor(chdr->cores, active) > h->ctrlBytes)
        return errCorruption(
            "attachArena: control region smaller than its geometry "
            "requires");
    if (h->dataBytes < num * block || num % active != 0)
        return errCorruption(
            "attachArena: data area inconsistent with the geometry");

    BTraceConfig cfg;
    cfg.storage = backend->kind();
    cfg.blockSize = static_cast<std::size_t>(block);
    cfg.activeBlocks = static_cast<std::size_t>(active);
    cfg.numBlocks = static_cast<std::size_t>(num);
    // The resize ceiling is whatever the creator reserved: the whole
    // data area. (Attachments cannot resize, but blockData() range
    // checks against this.)
    cfg.maxBlocks = static_cast<std::size_t>(
        alignDown(h->dataBytes / block, active));
    cfg.cores = chdr->cores;

    std::unique_ptr<BTrace> bt(
        new BTrace(AttachTag{}, std::move(backend), cfg, model));
    if (!bt->registerAttachment(/*is_owner=*/false))
        return errBusy("attachArena: attach registry full");
    return Expected<std::unique_ptr<BTrace>>(std::move(bt));
}

bool
BTrace::registerAttachment(bool is_owner)
{
    BTRACE_DASSERT(shared && attachGen != 0,
                   "registration needs a shared arena generation");
    for (std::size_t i = 0; i < kMaxAttachments; ++i) {
        ProducerSlot &s = ctrl.producers[i];
        uint64_t expect = 0;
        if (!s.attachGen.compare_exchange_strong(
                expect, attachGen, std::memory_order_acq_rel,
                std::memory_order_relaxed))
            continue;
        s.pid.store(pid_, std::memory_order_relaxed);
        s.flags.store(is_owner ? ProducerSlot::kOwnerFlag : 0u,
                      std::memory_order_release);
        producerSlotIdx = i;
        return true;
    }
    return false;
}

void
BTrace::deregisterAttachment()
{
    // Clean detach: leases were closed (Lease's destructor runs before
    // the tracer's), so no owner record names this generation anymore;
    // dropping the slot marks any record that still does as dead.
    ProducerSlot &s = ctrl.producers[producerSlotIdx];
    s.pid.store(0, std::memory_order_relaxed);
    s.flags.store(0, std::memory_order_relaxed);
    s.attachGen.store(0, std::memory_order_release);
}

bool
BTrace::attachmentAlive(uint64_t gen) const
{
    for (std::size_t i = 0; i < kMaxAttachments; ++i) {
        const ProducerSlot &s = ctrl.producers[i];
        if (s.attachGen.load(std::memory_order_acquire) != gen)
            continue;
        return processExists(s.pid.load(std::memory_order_relaxed));
    }
    // No registry slot: the attachment detached cleanly (closing its
    // leases first) or a sweep already cleared its crashed slot.
    return false;
}

uint32_t
BTrace::registerLeaseOwner(uint32_t slot, uint32_t rnd,
                           uint32_t span_start, uint32_t span_len,
                           uint64_t block_pos)
{
    // Rotating per-thread probe start spreads concurrent producers
    // over the table instead of contending on record 0.
    static thread_local uint32_t probe_hint = 0;
    for (std::size_t p = 0; p < kLeaseOwnerSlots; ++p) {
        const auto i = static_cast<uint32_t>(
            (probe_hint + p) % kLeaseOwnerSlots);
        LeaseOwnerRecord &r = ctrl.owners[i];
        uint32_t expect = LeaseOwnerRecord::Free;
        if (!r.state.compare_exchange_strong(
                expect, LeaseOwnerRecord::Claimed,
                std::memory_order_acq_rel, std::memory_order_relaxed))
            continue;
        r.pid.store(pid_, std::memory_order_relaxed);
        r.attachGen.store(attachGen, std::memory_order_relaxed);
        r.leaseSeq.store(ctrl.hdr->leaseSeq.fetch_add(
                             1, std::memory_order_relaxed) +
                             1,
                         std::memory_order_relaxed);
        r.slot.store(slot, std::memory_order_relaxed);
        r.round.store(rnd, std::memory_order_relaxed);
        r.spanStart.store(span_start, std::memory_order_relaxed);
        r.spanLen.store(span_len, std::memory_order_relaxed);
        r.blockPos.store(block_pos, std::memory_order_relaxed);
        r.state.store(LeaseOwnerRecord::Active,
                      std::memory_order_release);
        probe_hint = i + 1;
        return i + 1;
    }
    // Table full: the lease proceeds untracked — exactly the
    // pre-owner-table behavior (a death loses the block until the
    // round is sacrificed, §3.4), never a denial of service.
    return 0;
}

SweepReport
BTrace::sweepDeadOwners()
{
    SweepReport rep;
    if (!shared)
        return rep;

    // Pass 1: clear registry slots of crashed attachments, so pass
    // 2's liveness checks (and future attachers scanning for a free
    // slot) see their absence. CAS on attachGen serializes competing
    // sweepers; only the winner counts the clear.
    for (std::size_t i = 0; i < kMaxAttachments; ++i) {
        ProducerSlot &s = ctrl.producers[i];
        uint64_t gen = s.attachGen.load(std::memory_order_acquire);
        if (gen == 0 || gen == attachGen)
            continue;
        if (processExists(s.pid.load(std::memory_order_relaxed)))
            continue;
        if (s.attachGen.compare_exchange_strong(
                gen, 0, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
            s.pid.store(0, std::memory_order_relaxed);
            s.flags.store(0, std::memory_order_relaxed);
            ++rep.clearedAttachments;
        }
    }

    // Pass 2: the owner table. A record is reclaimable when the
    // attachment that stamped it is provably gone.
    for (std::size_t i = 0; i < kLeaseOwnerSlots; ++i) {
        LeaseOwnerRecord &r = ctrl.owners[i];
        const uint32_t st = r.state.load(std::memory_order_acquire);
        if (st != LeaseOwnerRecord::Active &&
            st != LeaseOwnerRecord::Closing)
            continue;
        const uint64_t gen =
            r.attachGen.load(std::memory_order_relaxed);
        if (gen == attachGen || attachmentAlive(gen))
            continue;

        if (st == LeaseOwnerRecord::Closing) {
            // Ambiguous micro-window: the owner died between its
            // Active -> Closing CAS and freeing the record, so the
            // bulk confirm may or may not have landed. Never touch
            // the block — just free the record; if the confirm never
            // landed the block stays incomplete and is sacrificed by
            // §3.4 skipping, the same cost as any untracked death.
            uint32_t expect = LeaseOwnerRecord::Closing;
            if (r.state.compare_exchange_strong(
                    expect, LeaseOwnerRecord::Free,
                    std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                ++rep.ambiguousCloses;
            continue;
        }

        // Claim the record. The CAS serializes against a racing
        // leaseClose (which moves Active -> Closing) and against other
        // sweepers: after it lands, the span's bulk confirm can never
        // be published by anyone but us.
        uint32_t expect = LeaseOwnerRecord::Active;
        if (!r.state.compare_exchange_strong(
                expect, LeaseOwnerRecord::Reclaiming,
                std::memory_order_acq_rel, std::memory_order_relaxed))
            continue;

        const uint32_t slot = r.slot.load(std::memory_order_relaxed);
        const uint32_t rnd = r.round.load(std::memory_order_relaxed);
        const uint32_t span_start =
            r.spanStart.load(std::memory_order_relaxed);
        const uint32_t span_len =
            r.spanLen.load(std::memory_order_relaxed);
        const uint64_t block_pos =
            r.blockPos.load(std::memory_order_relaxed);

        // An Active record's span is unconfirmed, so its block cannot
        // have completed its round: Confirmed must still be in the
        // record's round. Anything else means the record is stale
        // (defensive: never dummy-fill another round's block).
        const RndPos conf = meta[slot].loadConfirmed();
        if (conf.rnd != rnd || span_start + span_len > cap) {
            ++rep.staleRecords;
            r.state.store(LeaseOwnerRecord::Free,
                          std::memory_order_release);
            continue;
        }

        // Reclaim: dummy-fill the dead owner's span, confirm it on
        // its behalf (restoring exactly the confirmation deficit the
        // death left), and close the block through the graveyard path
        // so the active set recovers.
        writeDummy(blockData(physicalOf(block_pos)) + span_start,
                   span_len);
        meta[slot].confirmed.fetch_add(span_len,
                                       std::memory_order_acq_rel);
        double cost = 0.0;
        closeRound(slot, rnd, cost, BlockCloseReason::Graveyard);
        r.state.store(LeaseOwnerRecord::Free,
                      std::memory_order_release);

        // The dead producer's leasedOutstanding died with its
        // process-local counters; ours never counted this lease, so
        // only the dummy tally moves here.
        ctrs.dummyBytes.fetch_add(span_len, std::memory_order_relaxed);
        ++rep.reclaimedLeases;
        rep.reclaimedBytes += span_len;
        ctrl.hdr->reclaimedLeases.fetch_add(1,
                                            std::memory_order_relaxed);
        journalEmit(JournalEventKind::LeaseRevoke,
                    EventJournal::kNoCore, block_pos, span_len);
    }

    ctrl.hdr->sweeps.fetch_add(1, std::memory_order_relaxed);
    return rep;
}

} // namespace btrace
