/**
 * @file
 * Static configuration of a BTrace instance.
 */

#ifndef BTRACE_CORE_CONFIG_H
#define BTRACE_CORE_CONFIG_H

#include <cstddef>
#include <string>

#include "common/cacheline.h"
#include "common/panic.h"
#include "common/storage_backend.h"
#include "trace/event.h"

/**
 * Build-selected default storage backend (CMake -DBTRACE_BACKEND=
 * private|shm|file); numeric values match StorageKind. Lets the whole
 * test suite run against any backend without touching a test.
 */
#ifndef BTRACE_DEFAULT_BACKEND
#define BTRACE_DEFAULT_BACKEND 0
#endif

namespace btrace {

/**
 * Geometry of a BTrace buffer (§3.1-§3.3).
 *
 * The paper's production defaults: 4 KB data blocks, A = 16 x cores
 * active blocks, a 12-core asymmetric SoC. numBlocks must be a
 * multiple of activeBlocks (the metadata mapping ratio N : A must be
 * integral), and activeBlocks must be >= cores (§3.2).
 */
struct BTraceConfig
{
    std::size_t blockSize = 4096;   //!< data block bytes (>= 64, mult. of 8)
    std::size_t numBlocks = 3072;   //!< initial N; capacity = N * blockSize
    std::size_t activeBlocks = 192; //!< A; also the metadata block count
    std::size_t maxBlocks = 0;      //!< resize ceiling; 0 means numBlocks
    unsigned cores = 12;            //!< producer cores

    /** Storage backend for the data area (DESIGN.md §10). */
    StorageKind storage =
        static_cast<StorageKind>(BTRACE_DEFAULT_BACKEND);
    /**
     * File backend: backing path of the persistent ring. Empty means
     * an anonymous temp file (unlinked at creation, not reopenable);
     * name it to inspect the ring post mortem with
     * `btrace_inspect --arena`.
     */
    std::string arenaPath;

    std::size_t ratio() const { return numBlocks / activeBlocks; }
    std::size_t capacityBytes() const { return numBlocks * blockSize; }
    std::size_t effectiveMaxBlocks() const
    {
        return maxBlocks ? maxBlocks : numBlocks;
    }

    /** Abort with a diagnostic if the configuration is inconsistent. */
    void
    validate() const
    {
        BTRACE_ASSERT(blockSize >= 64 && blockSize % 8 == 0,
                      "blockSize must be >= 64 and 8-byte aligned");
        BTRACE_ASSERT(activeBlocks >= cores,
                      "activeBlocks (A) must be >= cores (§3.2)");
        BTRACE_ASSERT(numBlocks >= activeBlocks &&
                      numBlocks % activeBlocks == 0,
                      "numBlocks must be a positive multiple of A");
        BTRACE_ASSERT(effectiveMaxBlocks() >= numBlocks &&
                      effectiveMaxBlocks() % activeBlocks == 0,
                      "maxBlocks must be a multiple of A and >= numBlocks");
        BTRACE_ASSERT(cores >= 1, "need at least one core");
    }

    /** Largest normal-entry payload this geometry can store. */
    std::size_t
    maxPayloadBytes() const
    {
        return blockSize - EntryLayout::blockHeaderBytes -
               EntryLayout::normalHeaderBytes;
    }
};

} // namespace btrace

#endif // BTRACE_CORE_CONFIG_H
