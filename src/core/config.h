/**
 * @file
 * Static configuration of a BTrace instance.
 */

#ifndef BTRACE_CORE_CONFIG_H
#define BTRACE_CORE_CONFIG_H

#include <cstddef>
#include <string>

#include "common/cacheline.h"
#include "common/panic.h"
#include "common/storage_backend.h"
#include "control/control_config.h"
#include "trace/event.h"

/**
 * Build-selected default storage backend (CMake -DBTRACE_BACKEND=
 * private|shm|file); numeric values match StorageKind. Lets the whole
 * test suite run against any backend without touching a test.
 */
#ifndef BTRACE_DEFAULT_BACKEND
#define BTRACE_DEFAULT_BACKEND 0
#endif

namespace btrace {

/**
 * Geometry of a BTrace buffer (§3.1-§3.3).
 *
 * The paper's production defaults: 4 KB data blocks, A = 16 x cores
 * active blocks, a 12-core asymmetric SoC. numBlocks must be a
 * multiple of activeBlocks (the metadata mapping ratio N : A must be
 * integral), and activeBlocks must be >= cores (§3.2).
 */
struct BTraceConfig
{
    std::size_t blockSize = 4096;   //!< data block bytes (>= 64, mult. of 8)
    std::size_t numBlocks = 3072;   //!< initial N; capacity = N * blockSize
    std::size_t activeBlocks = 192; //!< A; also the metadata block count
    std::size_t maxBlocks = 0;      //!< resize ceiling; 0 means numBlocks
    unsigned cores = 12;            //!< producer cores

    /** Storage backend for the data area (DESIGN.md §10). */
    StorageKind storage =
        static_cast<StorageKind>(BTRACE_DEFAULT_BACKEND);
    /**
     * File backend: backing path of the persistent ring. Empty means
     * an anonymous temp file (unlinked at creation, not reopenable);
     * name it to inspect the ring post mortem with
     * `btrace_inspect --arena`.
     */
    std::string arenaPath;

    /**
     * Initial control-plane knobs (sampling, first-K, record budget,
     * governor ring bounds — DESIGN.md §12). Unlike the geometry
     * above, these are *runtime-reconfigurable* afterwards via
     * Session::applyControl, a watched control file, or the arena
     * control page. The all-defaults value costs nothing at runtime.
     */
    ControlConfig control;

    std::size_t ratio() const { return numBlocks / activeBlocks; }
    std::size_t capacityBytes() const { return numBlocks * blockSize; }
    std::size_t effectiveMaxBlocks() const
    {
        return maxBlocks ? maxBlocks : numBlocks;
    }

    /**
     * Check the configuration for consistency. The defaults above are
     * always valid; the rules a caller can break:
     *
     *  - blockSize >= 64 and a multiple of 8 (entry alignment);
     *  - cores >= 1 and activeBlocks >= cores (§3.2: every core must
     *    be able to hold a distinct active block);
     *  - numBlocks a positive multiple of activeBlocks (the N : A
     *    mapping ratio must be integral, §3.3);
     *  - maxBlocks (when set) a multiple of activeBlocks and
     *    >= numBlocks — it is the resize ceiling, and resize swings
     *    between multiples of A only (§4.4);
     *  - arenaPath is only meaningful for StorageKind::File; empty
     *    means an anonymous unlinked ring (valid but not reopenable,
     *    so `Session::attachFile` and post-mortem inspection need a
     *    named path). Shm arenas rendezvous by fd, never by path.
     *
     * Returns the first violation as InvalidArgument; direct BTrace
     * construction still treats that as fatal, while Session::create
     * surfaces it to the caller.
     */
    Status
    validate() const
    {
        if (blockSize < 64 || blockSize % 8 != 0)
            return errInvalidArgument(
                "blockSize must be >= 64 and 8-byte aligned");
        if (cores < 1)
            return errInvalidArgument("need at least one core");
        if (activeBlocks < cores)
            return errInvalidArgument(
                "activeBlocks (A) must be >= cores (§3.2)");
        if (numBlocks < activeBlocks || numBlocks % activeBlocks != 0)
            return errInvalidArgument(
                "numBlocks must be a positive multiple of A");
        if (effectiveMaxBlocks() < numBlocks ||
            effectiveMaxBlocks() % activeBlocks != 0)
            return errInvalidArgument(
                "maxBlocks must be a multiple of A and >= numBlocks");
        if (!arenaPath.empty() && storage != StorageKind::File)
            return errInvalidArgument(
                "arenaPath is only meaningful for the file backend");
        if (Status st = control.validate(); !st.ok())
            return st;
        // Cross-field control rules: the governor's ring bounds must
        // be reachable resize targets of *this* geometry (multiples
        // of A within [A, effectiveMaxBlocks], §4.4).
        if (control.ringMinBlocks != 0 &&
            (control.ringMinBlocks < activeBlocks ||
             control.ringMinBlocks % activeBlocks != 0))
            return errInvalidArgument(
                "control: ringMinBlocks must be a multiple of A >= A");
        if (control.ringMaxBlocks != 0 &&
            (control.ringMaxBlocks % activeBlocks != 0 ||
             control.ringMaxBlocks > effectiveMaxBlocks()))
            return errInvalidArgument(
                "control: ringMaxBlocks must be a multiple of A within "
                "the maxBlocks ceiling");
        return Status();
    }

    /** Largest normal-entry payload this geometry can store. */
    std::size_t
    maxPayloadBytes() const
    {
        return blockSize - EntryLayout::blockHeaderBytes -
               EntryLayout::normalHeaderBytes;
    }
};

} // namespace btrace

#endif // BTRACE_CORE_CONFIG_H
