/**
 * @file
 * Runtime buffer resizing via implicit reclamation (§3.3, §4.4).
 *
 * The data area lives in a virtual span reserved at the maximum size;
 * resizing only changes the Ratio in the global ratio_and_pos and the
 * physical commitment. Producers are quiesced implicitly: a block that
 * reached Confirmed.pos == capacity is, by construction, no longer
 * accessed by any producer in this round (the end-of-epoch semantic of
 * §3.3), so once every metadata block is complete the whole data area
 * is producer-free. Consumers are flushed with conventional EBR.
 */

#include <thread>

#include "common/test_hooks.h"
#include "core/btrace.h"

namespace btrace {

Status
BTrace::tryResize(std::size_t new_num_blocks)
{
    // Same preconditions resize() asserts, surfaced as a Status so a
    // runtime actuator (the governor) can decline gracefully instead
    // of taking the process down.
    if (new_num_blocks < numActive ||
        new_num_blocks % numActive != 0 || new_num_blocks > maxN)
        return errInvalidArgument(
            "resize target must be a multiple of A within "
            "[A, maxBlocks]");
    if (shared) {
        std::size_t live = 0;
        for (std::size_t i = 0; i < kMaxAttachments; ++i)
            if (ctrl.producers[i].attachGen.load(
                    std::memory_order_acquire) != 0)
                ++live;
        if (live > 1)
            return errBusy(
                "resize requires being the arena's sole live "
                "attachment (per-process RatioLog)");
    }
    resize(new_num_blocks);
    return Status();
}

void
BTrace::resize(std::size_t new_num_blocks)
{
    std::scoped_lock lock(resizeMutex);

    BTRACE_ASSERT(new_num_blocks >= numActive &&
                  new_num_blocks % numActive == 0 &&
                  new_num_blocks <= maxN,
                  "resize target must be a multiple of A within "
                  "[A, maxBlocks]");

    // Multi-process arenas: the RatioLog that maps positions to
    // physical blocks is per-process, so a resize would silently
    // mis-resolve positions in every other attachment. Allowed only
    // while this is the sole live attachment (DESIGN.md §11).
    if (shared) {
        std::size_t live = 0;
        for (std::size_t i = 0; i < kMaxAttachments; ++i)
            if (ctrl.producers[i].attachGen.load(
                    std::memory_order_acquire) != 0)
                ++live;
        BTRACE_ASSERT(live <= 1,
                      "resize requires being the arena's sole live "
                      "attachment (per-process RatioLog)");
    }
    const auto new_ratio =
        static_cast<uint32_t>(new_num_blocks / numActive);

    // Park block advancement (slow path only; the fast path never
    // reads the global word) while the mapping changes.
    const uint64_t frozen_word =
        global->fetch_or(RatioPos::frozenBit, std::memory_order_acq_rel);
    const RatioPos g = RatioPos::unpack(frozen_word);
    BTRACE_ASSERT(!g.frozen, "resize while already frozen");
    const uint32_t old_ratio = g.ratio;
    journalEmit(JournalEventKind::ResizeBegin, EventJournal::kNoCore,
                g.pos, new_num_blocks);

    if (new_ratio == old_ratio) {
        global->fetch_and(~RatioPos::frozenBit,
                          std::memory_order_acq_rel);
        journalEmit(JournalEventKind::ResizeEnd, EventJournal::kNoCore,
                    g.pos, new_ratio);
        return;
    }

    const std::size_t old_n = numActive * old_ratio;
    const std::size_t new_n = numActive * new_ratio;
    if (new_n > old_n)
        span.commit(old_n * cap, (new_n - old_n) * cap);

    // Journaled before the yield point below: a flight bundle taken
    // while the resize is parked here must already show the freeze.
    journalEmit(JournalEventKind::ResizeFreeze, EventJournal::kNoCore,
                g.pos, old_ratio);

    // Critical window: advancement is frozen but blocks are not yet
    // quiesced; producers may still be confirming in-flight writes.
    BTRACE_TEST_YIELD(ResizePostFreeze);

    // Quiesce: close every active block and wait for outstanding
    // confirmations. New reservations overshoot into the advancement
    // path, which is parked — so no new activity can appear.
    journalEmit(JournalEventKind::ReclaimStart, EventJournal::kNoCore,
                g.pos, old_n);
    double cost = 0.0;
    for (std::size_t m = 0; m < numActive; ++m) {
        for (;;) {
            const RndPos conf = meta[m].loadConfirmed();
            if (conf.pos == cap)
                break;
            closeRound(m, conf.rnd, cost, BlockCloseReason::Resize);
            if (meta[m].loadConfirmed().pos == cap)
                break;
            std::this_thread::yield();  // a preempted writer owes bytes
        }
    }
    journalEmit(JournalEventKind::ReclaimEnd, EventJournal::kNoCore,
                g.pos, old_n);

    // Swing the ratio, keeping the monotonic position (frozen
    // advancement attempts still consume positions, hence the CAS
    // loop). The RatioLog entry becomes visible together with the
    // unfrozen global word.
    uint64_t cur = global->load(std::memory_order_acquire);
    bool staged = false;
    for (;;) {
        const RatioPos c = RatioPos::unpack(cur);
        if (!staged) {
            ratioLog.stage(c.pos, new_ratio);
            staged = true;
        } else {
            ratioLog.restage(c.pos);
        }
        const uint64_t desired = RatioPos::pack(new_ratio, false, c.pos);
        if (global->compare_exchange_strong(cur, desired,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
            break;
    }
    ratioLog.publish();
    ctrs.resizes.fetch_add(1, std::memory_order_relaxed);
    journalEmit(JournalEventKind::ResizeEnd, EventJournal::kNoCore,
                g.pos, new_ratio);

    // Keep the arena self-describing: an offline decoder reads N from
    // the header, so it must follow every ratio swing.
    if (ArenaHeader *h = span.backend()->header())
        h->numBlocks.store(new_n, std::memory_order_release);

    if (new_n < old_n) {
        // Make sure no consumer still reads the shrunk tail, then
        // release the physical pages (the virtual range stays mapped,
        // so stale pointers read zeros instead of faulting). With
        // sub-page block sizes the span rounds the shrunk byte range
        // *inward* to page boundaries; edge pages shared with live
        // blocks stay resident.
        consumers.synchronize();
        // Critical window: every consumer epoch has been flushed; any
        // reader starting now sees the new geometry, so decommit can
        // only zero pages no guarded reader still trusts.
        BTRACE_TEST_YIELD(ResizePreDecommit);
        span.decommit(new_n * cap, (old_n - new_n) * cap);
    }
}

} // namespace btrace
