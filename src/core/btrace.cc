#include "core/btrace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "common/test_hooks.h"

namespace btrace {

namespace {

/**
 * Rounds are 32-bit (packed64.h); a global position past 2^32 rounds
 * of one metadata block would silently alias older rounds and corrupt
 * every round comparison. That is ~10^13 events with the default
 * geometry — unreachable in practice, but it must fail loudly, not
 * wrap: an aliased round re-locks a block that still has live data.
 */
inline uint32_t
checkedRound(uint64_t pos, std::size_t num_active)
{
    const uint64_t rnd = pos / num_active;
    BTRACE_ASSERT(rnd <= 0xffffffffull,
                  "32-bit metadata round overflow at this position");
    return static_cast<uint32_t>(rnd);
}

} // namespace

BTraceCounters::Snapshot
BTraceCounters::snapshot() const
{
    Snapshot s;
    const auto ld = [](const std::atomic<uint64_t> &a) {
        return a.load(std::memory_order_relaxed);
    };
    s.fastAllocs = ld(fastAllocs);
    s.boundaryFills = ld(boundaryFills);
    s.staleAllocs = ld(staleAllocs);
    s.advances = ld(advances);
    s.skips = ld(skips);
    s.closes = ld(closes);
    s.lockRaces = ld(lockRaces);
    s.coreRaces = ld(coreRaces);
    s.wouldBlock = ld(wouldBlock);
    s.dummyBytes = ld(dummyBytes);
    s.resizes = ld(resizes);
    s.sharedRmws = ld(sharedRmws);
    s.leases = ld(leases);
    s.leaseEntries = ld(leaseEntries);
    s.leasedOutstanding = ld(leasedOutstanding);
    return s;
}

BTraceCounters::Snapshot
BTraceCounters::Snapshot::operator-(const Snapshot &base) const
{
    Snapshot d;
    d.fastAllocs = fastAllocs - base.fastAllocs;
    d.boundaryFills = boundaryFills - base.boundaryFills;
    d.staleAllocs = staleAllocs - base.staleAllocs;
    d.advances = advances - base.advances;
    d.skips = skips - base.skips;
    d.closes = closes - base.closes;
    d.lockRaces = lockRaces - base.lockRaces;
    d.coreRaces = coreRaces - base.coreRaces;
    d.wouldBlock = wouldBlock - base.wouldBlock;
    d.dummyBytes = dummyBytes - base.dummyBytes;
    d.resizes = resizes - base.resizes;
    d.sharedRmws = sharedRmws - base.sharedRmws;
    d.leases = leases - base.leases;
    d.leaseEntries = leaseEntries - base.leaseEntries;
    d.leasedOutstanding = leasedOutstanding - base.leasedOutstanding;
    return d;
}

VirtualSpan
BTrace::makeSpan(const BTraceConfig &config)
{
    StorageOptions o;
    o.kind = config.storage;
    o.bytes = config.effectiveMaxBlocks() * config.blockSize;
    o.path = config.arenaPath;
    // Arena backends carve a control region between the flight region
    // and the data area; the tracer's coordination words live there so
    // other processes can attach (arena_control.h).
    if (config.storage != StorageKind::Private)
        o.ctrlBytes = ctrlBytesFor(config.cores, config.activeBlocks);
    return VirtualSpan(makeStorageBackend(o));
}

void
BTrace::bindControl()
{
    const std::size_t need = ctrlBytesFor(cfg.cores, numActive);
    uint8_t *base = span.backend()->ctrlRegion();
    if (base != nullptr) {
        shared = true;
    } else {
        // Private backend: same layout on the heap. The registry and
        // owner-table sections exist but are never touched (shared ==
        // false gates every use), so the fast path is byte-identical
        // to the pre-multiprocess tracer.
        const std::size_t bytes = alignUp(need, std::size_t(128));
        auto *p = static_cast<uint8_t *>(std::aligned_alloc(128, bytes));
        BTRACE_ASSERT(p != nullptr, "control-state allocation failed");
        std::memset(p, 0, bytes);
        ctrlHeap = std::unique_ptr<uint8_t, void (*)(uint8_t *)>(
            p, +[](uint8_t *q) { std::free(q); });
        base = p;
    }
    ctrl = ControlView::bind(base, cfg.cores, numActive);
    meta = ctrl.meta;
    global = &**ctrl.global;
    coreLocal = ctrl.coreLocal;
}

BTrace::BTrace(const BTraceConfig &config, const CostModel &model)
    : Tracer(model), cfg(config), cap(config.blockSize),
      numActive(config.activeBlocks), maxN(config.effectiveMaxBlocks()),
      span(makeSpan(config))
{
    if (const Status vst = cfg.validate(); !vst.ok()) {
        std::fprintf(stderr, "btrace: %s\n", vst.toString().c_str());
        BTRACE_FATAL("invalid BTraceConfig (use Session::create for a "
                     "recoverable Status)");
    }

    pid_ = static_cast<uint32_t>(::getpid());
    bindControl();

    // Make a dead arena self-describing: record the geometry an
    // offline decoder needs and drop any clean-shutdown mark left by
    // a previous owner of the same backing object.
    if (ArenaHeader *h = span.backend()->header()) {
        h->blockSize.store(cap, std::memory_order_relaxed);
        h->activeBlocks.store(numActive, std::memory_order_relaxed);
        h->numBlocks.store(cfg.numBlocks, std::memory_order_relaxed);
        h->cleanShutdown.store(0, std::memory_order_release);
    }

    if (shared) {
        // Owner initialization of the shared control region. The
        // mapping starts zero-filled on a fresh backing object, but a
        // reused file path may carry a previous life's tables: clear
        // them before publishing ready below.
        std::memset(static_cast<void *>(ctrl.producers), 0,
                    kMaxAttachments * sizeof(ProducerSlot));
        std::memset(static_cast<void *>(ctrl.owners), 0,
                    kLeaseOwnerSlots * sizeof(LeaseOwnerRecord));
        ctrl.hdr->magic = ControlHeader::kMagic;
        ctrl.hdr->version = ControlHeader::kVersion;
        ctrl.hdr->cores = cfg.cores;
        ctrl.hdr->activeBlocks = numActive;
        ctrl.hdr->leaseSeq.store(0, std::memory_order_relaxed);
        ctrl.hdr->sweeps.store(0, std::memory_order_relaxed);
        ctrl.hdr->reclaimedLeases.store(0, std::memory_order_relaxed);
        ctrl.hdr->ready.store(0, std::memory_order_relaxed);
        attachGen = span.backend()->attachGeneration();
    }

    const auto ratio = static_cast<uint32_t>(cfg.ratio());
    BTRACE_ASSERT(ratio <= RatioPos::maxRatio, "ratio exceeds packing");

    // Round 0 is a synthetic, already-complete round: Confirmed.pos ==
    // capacity everywhere, so the first advancement per metadata block
    // locks round >= 1 with no special cases.
    for (std::size_t i = 0; i < numActive; ++i) {
        meta[i].allocated.store(RndPos::pack(0, uint32_t(cap)),
                                std::memory_order_relaxed);
        meta[i].confirmed.store(RndPos::pack(0, uint32_t(cap)),
                                std::memory_order_relaxed);
    }

    ratioLog.stage(0, ratio);
    ratioLog.publish();

    // Cores start parked on distinct round-0 positions; their first
    // allocation overshoots and takes the advancement path.
    for (unsigned c = 0; c < cfg.cores; ++c)
        coreLocal[c]->store(RatioPos::pack(ratio, false, c),
                            std::memory_order_relaxed);
    global->store(RatioPos::pack(ratio, false, numActive),
                  std::memory_order_release);

    span.commit(0, cfg.numBlocks * cap);

    // Control plane last in the init sequence but before the ready
    // publish: the owner wipes the arena control page and posts
    // version 1 (cfg.control) while no attachment can observe it yet.
    plane = std::make_unique<ControlPlane>(
        *this, ControlGeometry{numActive, maxN},
        shared ? ctrl.page : nullptr, /*owner_init=*/true, cfg.control);

    if (shared) {
        // The registry can't be full here: the region was just wiped.
        const bool ok = registerAttachment(/*is_owner=*/true);
        BTRACE_ASSERT(ok, "owner registration failed on a fresh arena");
        // Publish: attachments spin-check ready == 1 (attachArena).
        ctrl.hdr->ready.store(1, std::memory_order_release);
    }
}

BTrace::~BTrace()
{
    if (shared)
        deregisterAttachment();
    if (ArenaHeader *h = span.backend()->header()) {
        // Only the owner stamps the clean-shutdown mark: a detaching
        // secondary leaves the ring live (the owner or other
        // attachments keep producing into it).
        if (owner_) {
            h->numBlocks.store(numBlocks(), std::memory_order_relaxed);
            h->cleanShutdown.store(1, std::memory_order_release);
        }
        span.backend()->sync();
    }
}

uint8_t *
BTrace::blockData(uint64_t phys)
{
    BTRACE_DASSERT(phys < maxN, "physical block out of range");
    return span.resolve(blockRefOf(phys));
}

const uint8_t *
BTrace::blockData(uint64_t phys) const
{
    BTRACE_DASSERT(phys < maxN, "physical block out of range");
    return span.resolve(blockRefOf(phys));
}

uint64_t
BTrace::physicalOf(uint64_t pos) const
{
    const uint64_t n = numActive * ratioLog.ratioAt(pos);
    return pos % n;
}

std::size_t
BTrace::capacityBytes() const
{
    return numBlocks() * cap;
}

std::size_t
BTrace::numBlocks() const
{
    const auto g = RatioPos::unpack(
        global->load(std::memory_order_acquire));
    return numActive * g.ratio;
}

uint64_t
BTrace::headPosition() const
{
    return RatioPos::unpack(global->load(std::memory_order_acquire))
        .pos;
}

ActiveBlockOccupancy
BTrace::occupancy() const
{
    // Monitoring-grade scan: each slot read is internally consistent
    // (one Confirmed load, one Allocated load), the set of slots is
    // not a linearizable cut. Safe concurrently with producers.
    ActiveBlockOccupancy occ;
    for (std::size_t i = 0; i < numActive; ++i) {
        const MetadataBlock &m = meta[i];
        const RndPos conf = m.loadConfirmed();
        if (conf.pos >= cap) {
            ++occ.complete;
            continue;
        }
        const RndPos alloc = m.loadAllocated();
        if (alloc.rnd == conf.rnd && alloc.pos == conf.pos)
            ++occ.open;
        else
            ++occ.incomplete;
    }
    return occ;
}

std::vector<MetaSlotState>
BTrace::slotStates() const
{
    std::vector<MetaSlotState> out(numActive);
    out.resize(slotStatesInto(out.data(), out.size()));
    return out;
}

std::size_t
BTrace::slotStatesInto(MetaSlotState *out, std::size_t max) const noexcept
{
    // Same monitoring-grade caveat as occupancy(): each word is read
    // atomically, the pair per slot (and the set of slots) is not a
    // linearizable cut. Safe concurrently with producers; used on the
    // flight-recorder capture path, which must never take tracer
    // locks or allocate.
    const std::size_t n = std::min(numActive, max);
    for (std::size_t i = 0; i < n; ++i) {
        const MetadataBlock &m = meta[i];
        const RndPos alloc = m.loadAllocated(std::memory_order_relaxed);
        const RndPos conf = m.loadConfirmed();
        out[i].allocRnd = alloc.rnd;
        out[i].allocPos = alloc.pos;
        out[i].confRnd = conf.rnd;
        out[i].confPos = conf.pos;
    }
    return n;
}

bool
BTrace::writeFlightToArena(const char *bundle, std::size_t len) noexcept
{
    StorageBackend *b = span.backend();
    ArenaHeader *h = b->header();
    uint8_t *dst = b->flightRegion();
    if (h == nullptr || dst == nullptr)
        return false;
    const std::size_t n =
        std::min<std::size_t>(len, h->flightCapacity);
    // Publish protocol for an offline ArenaView racing a crash: len
    // drops to zero before the bytes churn, and only rises to n after
    // every byte landed, so a reader never sees a length covering a
    // half-copied bundle.
    h->flightLen.store(0, std::memory_order_release);
    std::memcpy(dst, bundle, n);
    h->flightLen.store(n, std::memory_order_release);
    b->sync();
    return true;
}

WriteTicket
BTrace::allocate(uint16_t core, uint32_t thread, uint32_t payload_len)
{
    BTRACE_DASSERT(core < cfg.cores, "core id out of range");
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_len));
    BTRACE_DASSERT(need <= cap - EntryLayout::blockHeaderBytes,
                   "entry larger than a data block");

    WriteTicket ticket;
    ticket.core = core;
    ticket.thread = thread;
    ticket.cost = costs.tscRead + costs.setupOverhead;

    // One arming load for every probe in this call (DESIGN.md §14).
    CostProfiler *const pf = activeProfiler();

    // Bounded safety valve: with every metadata block held by a
    // preempted writer the advancement loop cannot make progress;
    // report Retry so the caller can reschedule (§3.4).
    for (int attempt = 0; attempt < 64; ++attempt) {
        const uint64_t local_word =
            coreLocal[core]->load(std::memory_order_acquire);
        const RatioPos local = RatioPos::unpack(local_word);
        const std::size_t meta_idx = local.pos % numActive;
        const uint32_t exp_rnd = checkedRound(local.pos, numActive);
        MetadataBlock &m = meta[meta_idx];

        // Guard the fetch_add with a plain load of the same (hot)
        // line: on an exhausted or stolen block an unconditional add
        // would create avoidable dummy obligations and, if producers
        // spin here, pump Pos towards a 32-bit overflow.
        const RndPos pre = m.loadAllocated(std::memory_order_relaxed);
        if (pre.rnd != exp_rnd || pre.pos >= cap) {
            if (coreLocal[core]->load(std::memory_order_acquire) ==
                local_word) {
                const AdvanceResult res =
                    timedAdvance(pf, core, local_word, ticket.cost);
                if (res == AdvanceResult::WouldBlock) {
                    ticket.status = AllocStatus::Retry;
                    ctrs.wouldBlock.fetch_add(1,
                                              std::memory_order_relaxed);
                    return ticket;
                }
            }
            continue;
        }

        // Critical window: the metadata can be re-locked for a newer
        // round between the core-local read above and this fetch_add,
        // turning the reservation stale (§3.2).
        BTRACE_TEST_YIELD(AllocPreReserve);

        uint64_t claimed;
        {
            // Claim-phase probe: the reservation FAA itself.
            PhaseProbe probe(pf, ProfilePhase::Claim);
            claimed =
                m.allocated.fetch_add(need, std::memory_order_acq_rel);
        }
        const RndPos old = RndPos::unpack(claimed);
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        ticket.cost += costs.atomicLocal;

        if (old.rnd == exp_rnd) {
            if (old.pos + need <= cap) {
                // Fast path (§4.1): space granted in our core's block.
                const uint64_t phys =
                    local.pos % (numActive * local.ratio);
                ticket.dst = blockData(phys) + old.pos;
                ticket.entrySize = need;
                ticket.handle.slot = static_cast<uint32_t>(meta_idx);
                ticket.status = AllocStatus::Ok;
                ctrs.fastAllocs.fetch_add(1, std::memory_order_relaxed);
                return ticket;
            }

            if (old.pos < cap) {
                // Insufficient tail: fill it with a dummy entry and
                // confirm it (§4.1, Fig 8c), then advance.
                const uint64_t phys =
                    local.pos % (numActive * local.ratio);
                const auto gap = static_cast<uint32_t>(cap - old.pos);
                writeDummy(blockData(phys) + old.pos, gap);
                // Critical window: the tail dummy is written but not
                // yet confirmed; the block stays incomplete and must
                // be skipped, never re-locked, until the confirm.
                BTRACE_TEST_YIELD(AllocPreBoundaryConfirm);
                m.confirmed.fetch_add(gap, std::memory_order_acq_rel);
                ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
                ctrs.boundaryFills.fetch_add(1, std::memory_order_relaxed);
                ctrs.dummyBytes.fetch_add(gap, std::memory_order_relaxed);
                ticket.cost += costs.atomicLocal + costs.copy(8);
                journalEmit(JournalEventKind::BlockClose, core,
                            local.pos,
                            uint64_t(BlockCloseReason::Full));
            }

            // Block exhausted: advance to a fresh one (§4.2).
            const AdvanceResult res =
                timedAdvance(pf, core, local_word, ticket.cost);
            if (res == AdvanceResult::WouldBlock) {
                ticket.status = AllocStatus::Retry;
                ctrs.wouldBlock.fetch_add(1, std::memory_order_relaxed);
                return ticket;
            }
            continue;
        }

        BTRACE_DASSERT(old.rnd > exp_rnd,
                       "allocation round ran behind the core-local view");

        // Stale reservation: the metadata was re-locked for a newer
        // round between our core-local read and the fetch_add. This
        // happens when our core's lagging block was closed and stolen
        // by a wrap-around producer (§3.2). We own [old.pos,
        // old.pos+need) of the *new* round's block; fill it with a
        // dummy and confirm so that block still completes.
        ctrs.staleAllocs.fetch_add(1, std::memory_order_relaxed);
        if (old.pos < cap) {
            const auto claim = static_cast<uint32_t>(
                std::min<uint64_t>(need, cap - old.pos));
            const uint64_t stale_pos =
                uint64_t(old.rnd) * numActive + meta_idx;
            writeDummy(blockData(physicalOf(stale_pos)) + old.pos, claim);
            // Critical window: the stale-round dummy obligation is
            // written but unconfirmed; the new round's block cannot
            // complete until this confirm lands.
            BTRACE_TEST_YIELD(AllocPreStaleConfirm);
            m.confirmed.fetch_add(claim, std::memory_order_acq_rel);
            ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
            ctrs.dummyBytes.fetch_add(claim, std::memory_order_relaxed);
            ticket.cost += costs.atomicLocal + costs.copy(8);
        }

        // If no other thread of this core has installed a fresh block
        // in the meantime, it is on us to advance; otherwise just
        // re-read the updated core-local word.
        if (coreLocal[core]->load(std::memory_order_acquire) ==
            local_word) {
            const AdvanceResult res =
                timedAdvance(pf, core, local_word, ticket.cost);
            if (res == AdvanceResult::WouldBlock) {
                ticket.status = AllocStatus::Retry;
                ctrs.wouldBlock.fetch_add(1, std::memory_order_relaxed);
                return ticket;
            }
        }
    }

    ticket.status = AllocStatus::Retry;
    ctrs.wouldBlock.fetch_add(1, std::memory_order_relaxed);
    return ticket;
}

void
BTrace::confirm(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok, "confirm without Ok");
    BTRACE_DASSERT(!ticket.leased, "leased tickets confirm via the lease");
    MetadataBlock &m = meta[ticket.handle.slot];
    {
        // Publish-phase probe: the confirm FAA (DESIGN.md §14).
        PhaseProbe probe(activeProfiler(), ProfilePhase::Publish);
        m.confirmed.fetch_add(ticket.entrySize,
                              std::memory_order_acq_rel);
    }
    ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
    ticket.cost += costs.atomicLocal;
}

void
BTrace::abandonWrite(WriteTicket &ticket)
{
    BTRACE_DASSERT(ticket.status == AllocStatus::Ok, "abandon without Ok");
    writeDummy(ticket.dst, ticket.entrySize);
    ctrs.dummyBytes.fetch_add(ticket.entrySize,
                              std::memory_order_relaxed);
    ticket.cost += costs.copy(8);
    confirm(ticket);
}

Lease
BTrace::lease(uint16_t core, uint32_t thread, uint32_t payload_hint,
              uint32_t n)
{
    BTRACE_DASSERT(core < cfg.cores, "core id out of range");
    const auto need = static_cast<uint32_t>(
        EntryLayout::normalSize(payload_hint));
    BTRACE_DASSERT(need <= cap - EntryLayout::blockHeaderBytes,
                   "entry larger than a data block");
    // A lease never spans blocks: cap the span at what a fresh block
    // can hold, so a huge n degenerates to one-lease-per-block.
    const auto want = static_cast<uint32_t>(std::min<uint64_t>(
        uint64_t(need) * std::max(1u, n),
        cap - EntryLayout::blockHeaderBytes));

    double cost = costs.tscRead + costs.setupOverhead;

    // One arming load for every probe in this call (DESIGN.md §14).
    CostProfiler *const pf = activeProfiler();

    // Same bounded safety valve as allocate(): with every metadata
    // block held by a preempted writer the advancement loop cannot
    // make progress; report Retry so the caller can reschedule (§3.4).
    for (int attempt = 0; attempt < 64; ++attempt) {
        const uint64_t local_word =
            coreLocal[core]->load(std::memory_order_acquire);
        const RatioPos local = RatioPos::unpack(local_word);
        const std::size_t meta_idx = local.pos % numActive;
        const uint32_t exp_rnd = checkedRound(local.pos, numActive);
        MetadataBlock &m = meta[meta_idx];

        const RndPos pre = m.loadAllocated(std::memory_order_relaxed);
        if (pre.rnd != exp_rnd || pre.pos >= cap) {
            if (coreLocal[core]->load(std::memory_order_acquire) ==
                local_word) {
                if (timedAdvance(pf, core, local_word, cost) ==
                    AdvanceResult::WouldBlock) {
                    ctrs.wouldBlock.fetch_add(1,
                                              std::memory_order_relaxed);
                    return deniedLease(AllocStatus::Retry, cost);
                }
            }
            continue;
        }

        // Critical window: the metadata can be re-locked for a newer
        // round between the core-local read above and this fetch_add,
        // turning the whole span reservation stale (§3.2).
        BTRACE_TEST_YIELD(LeasePreClaim);

        uint64_t claimed;
        {
            // Claim-phase probe: the span-reservation FAA itself.
            PhaseProbe probe(pf, ProfilePhase::Claim);
            claimed =
                m.allocated.fetch_add(want, std::memory_order_acq_rel);
        }
        const RndPos old = RndPos::unpack(claimed);
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        cost += costs.atomicLocal;

        if (old.rnd == exp_rnd) {
            if (old.pos + need <= cap) {
                // Span granted (possibly short of want near the block
                // end); the overshoot beyond capacity, if any, only
                // marks the block exhausted, exactly like a single-
                // entry reservation overshoot.
                const auto grant = static_cast<uint32_t>(
                    std::min<uint64_t>(want, cap - old.pos));
                const uint64_t phys =
                    local.pos % (numActive * local.ratio);
                ctrs.leases.fetch_add(1, std::memory_order_relaxed);
                ctrs.leasedOutstanding.fetch_add(
                    grant, std::memory_order_relaxed);
                journalEmit(JournalEventKind::LeaseGrant, core,
                            local.pos, grant);
                TicketHandle handle;
                handle.slot = static_cast<uint32_t>(meta_idx);
                // Multi-process arenas stamp an ownership record so a
                // sweeper can reclaim the span if we die holding it.
                // aux == 0 means untracked (private backend, or the
                // owner table was full). Not charged to sharedRmws:
                // robustness plane, not the §4.1 write protocol.
                if (shared)
                    handle.aux = registerLeaseOwner(
                        static_cast<uint32_t>(meta_idx), exp_rnd,
                        old.pos, grant, local.pos);
                return grantLease(*this, core, thread,
                                  blockData(phys) + old.pos, grant,
                                  handle, cost);
            }

            if (old.pos < cap) {
                // Tail smaller than one entry: fill it with a dummy
                // and confirm it (§4.1, Fig 8c), then advance.
                const uint64_t phys =
                    local.pos % (numActive * local.ratio);
                const auto gap = static_cast<uint32_t>(cap - old.pos);
                writeDummy(blockData(phys) + old.pos, gap);
                BTRACE_TEST_YIELD(AllocPreBoundaryConfirm);
                m.confirmed.fetch_add(gap, std::memory_order_acq_rel);
                ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
                ctrs.boundaryFills.fetch_add(1,
                                             std::memory_order_relaxed);
                ctrs.dummyBytes.fetch_add(gap,
                                          std::memory_order_relaxed);
                cost += costs.atomicLocal + costs.copy(8);
                journalEmit(JournalEventKind::BlockClose, core,
                            local.pos,
                            uint64_t(BlockCloseReason::Full));
            }

            if (timedAdvance(pf, core, local_word, cost) ==
                AdvanceResult::WouldBlock) {
                ctrs.wouldBlock.fetch_add(1, std::memory_order_relaxed);
                return deniedLease(AllocStatus::Retry, cost);
            }
            continue;
        }

        BTRACE_DASSERT(old.rnd > exp_rnd,
                       "lease round ran behind the core-local view");

        // Stale span reservation: the metadata was re-locked for a
        // newer round between our core-local read and the fetch_add.
        // We own [old.pos, old.pos+want) of the *new* round's block;
        // fill the in-capacity part with a dummy and confirm so that
        // block still completes (§3.2).
        ctrs.staleAllocs.fetch_add(1, std::memory_order_relaxed);
        if (old.pos < cap) {
            const auto claim = static_cast<uint32_t>(
                std::min<uint64_t>(want, cap - old.pos));
            const uint64_t stale_pos =
                uint64_t(old.rnd) * numActive + meta_idx;
            writeDummy(blockData(physicalOf(stale_pos)) + old.pos,
                       claim);
            BTRACE_TEST_YIELD(AllocPreStaleConfirm);
            m.confirmed.fetch_add(claim, std::memory_order_acq_rel);
            ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
            ctrs.dummyBytes.fetch_add(claim, std::memory_order_relaxed);
            cost += costs.atomicLocal + costs.copy(8);
        }

        if (coreLocal[core]->load(std::memory_order_acquire) ==
            local_word) {
            if (timedAdvance(pf, core, local_word, cost) ==
                AdvanceResult::WouldBlock) {
                ctrs.wouldBlock.fetch_add(1, std::memory_order_relaxed);
                return deniedLease(AllocStatus::Retry, cost);
            }
        }
    }

    ctrs.wouldBlock.fetch_add(1, std::memory_order_relaxed);
    return deniedLease(AllocStatus::Retry, cost);
}

void
BTrace::leaseClose(Lease &l)
{
    const LeaseView v = viewOf(l);
    const uint32_t remainder = v.len - v.used;
    const uint32_t publish = v.confirmedBytes + remainder;
    double cost = 0.0;
    CostProfiler *const pf = activeProfiler();
    LeaseOwnerRecord *rec = nullptr;
    {
        // Lease-renew-phase probe (DESIGN.md §14): the close-side
        // overhead a renewal pays — remainder dummy fill plus the
        // owner-record CAS. The bulk confirm FAA lands in the publish
        // phase below, so the two buckets never overlap.
        PhaseProbe renewProbe(pf, ProfilePhase::LeaseRenew);
        if (remainder > 0) {
            // Return the unused span as one dummy entry so every
            // leased byte is confirmed exactly once (DESIGN.md §3).
            writeDummy(v.base + v.used, remainder);
            cost += costs.copy(8);
        }
        // Critical window: the remainder dummy is written but the
        // bulk confirm has not landed; the block stays incomplete and
        // must be skipped, never re-locked, until the fetch_add
        // below. A producer killed here is still Active in the owner
        // table, so a sweeper reclaims the whole span cleanly.
        BTRACE_TEST_YIELD(LeasePreCloseConfirm);

        // Owner-record close protocol (DESIGN.md §11): Active ->
        // Closing immediately before the bulk confirm, Free after it.
        // A sweeper only ever claims Active records, so once our CAS
        // lands it can never confirm this span a second time. Not
        // charged to sharedRmws: robustness plane, never executed on
        // the private backend.
        if (shared && v.handle.aux != 0) {
            rec = &ctrl.owners[v.handle.aux - 1];
            uint32_t expect = LeaseOwnerRecord::Active;
            if (!rec->state.compare_exchange_strong(
                    expect, LeaseOwnerRecord::Closing,
                    std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                // A sweeper concluded we were dead (pid reuse, or a
                // registry mishap) and owns the record: it
                // dummy-fills and confirms the span on our behalf.
                // Publishing too would double-confirm, so drop ours;
                // keep the level counter and the entry tally sane.
                ctrs.leasedOutstanding.fetch_sub(
                    publish, std::memory_order_relaxed);
                ctrs.leaseEntries.fetch_add(v.served,
                                            std::memory_order_relaxed);
                chargeLease(l, cost);
                return;
            }
        }
    }
    if (publish > 0) {
        {
            // Publish-phase probe: the bulk confirm FAA.
            PhaseProbe probe(pf, ProfilePhase::Publish);
            meta[v.handle.slot].confirmed.fetch_add(
                publish, std::memory_order_acq_rel);
        }
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        cost += costs.atomicLocal;
    }
    if (rec != nullptr)
        rec->state.store(LeaseOwnerRecord::Free,
                         std::memory_order_release);
    ctrs.leaseEntries.fetch_add(v.served, std::memory_order_relaxed);
    if (v.dummyBytes + remainder > 0) {
        ctrs.dummyBytes.fetch_add(v.dummyBytes + remainder,
                                  std::memory_order_relaxed);
    }
    ctrs.leasedOutstanding.fetch_sub(publish,
                                     std::memory_order_relaxed);
    // Journal only the anomalous closes: an abandoned lease (granted,
    // served nothing) or an early revoke returning unused bytes. The
    // clean fully-used close is the hot path and says nothing.
    if (v.served == 0 && v.len > 0)
        journalEmit(JournalEventKind::LeaseAbandon, v.core,
                    v.handle.slot, v.len);
    else if (remainder > 0)
        journalEmit(JournalEventKind::LeaseRevoke, v.core,
                    v.handle.slot, remainder);
    chargeLease(l, cost);
}

void
BTrace::closeRound(std::size_t meta_idx, uint32_t rnd, double &cost,
                   BlockCloseReason reason)
{
    MetadataBlock &m = meta[meta_idx];
    for (;;) {
        uint64_t aw = m.allocated.load(std::memory_order_acquire);
        const RndPos a = RndPos::unpack(aw);
        if (a.rnd != rnd || a.pos >= cap)
            return;  // moved on, or nothing left to claim
        // Critical window: a concurrent reservation or a competing
        // closer can move Allocated between the load and this claim.
        BTRACE_TEST_YIELD(ClosePreClaim);
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        if (!m.allocated.compare_exchange_weak(
                aw, RndPos::pack(rnd, uint32_t(cap)),
                std::memory_order_acq_rel, std::memory_order_relaxed)) {
            cost += costs.retryBackoff;
            continue;
        }
        // We claimed [a.pos, cap): fill with one dummy entry, confirm.
        const auto gap = static_cast<uint32_t>(cap - a.pos);
        const uint64_t pos = uint64_t(rnd) * numActive + meta_idx;
        writeDummy(blockData(physicalOf(pos)) + a.pos, gap);
        m.confirmed.fetch_add(gap, std::memory_order_acq_rel);
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        ctrs.closes.fetch_add(1, std::memory_order_relaxed);
        ctrs.dummyBytes.fetch_add(gap, std::memory_order_relaxed);
        cost += costs.atomicShared * 2 + costs.copy(8);
        journalEmit(JournalEventKind::BlockClose, EventJournal::kNoCore,
                    pos, uint64_t(reason));
        return;
    }
}

BTrace::AdvanceResult
BTrace::tryAdvance(uint16_t core, uint64_t local_word, double &cost)
{
    const auto max_skips = 2 * numActive;
    std::size_t skips_in_a_row = 0;

    for (;;) {
        const RatioPos g = RatioPos::unpack(global->fetch_add(
            1, std::memory_order_acq_rel));
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        cost += costs.atomicShared;

        if (g.frozen)
            return AdvanceResult::WouldBlock;  // resize in flight

        // Critical window: the candidate is claimed but nothing is
        // locked yet; later candidates for the same metadata can race
        // ahead of this one.
        BTRACE_TEST_YIELD(AdvancePostClaim);

        const uint64_t cand = g.pos;
        const uint64_t n = numActive * g.ratio;
        const std::size_t meta_idx = cand % numActive;
        const uint32_t cand_rnd = checkedRound(cand, numActive);
        MetadataBlock &m = meta[meta_idx];

        uint64_t cw = m.confirmed.load(std::memory_order_acquire);
        RndPos conf = RndPos::unpack(cw);
        if (conf.rnd >= cand_rnd)
            continue;  // a later candidate already took this metadata

        if (conf.pos != cap) {
            // Previous round still incomplete: close the lagging block
            // (§3.2), then re-check; if a preempted writer still holds
            // unconfirmed space, sacrifice the candidate (§3.4).
            closeRound(meta_idx, conf.rnd, cost,
                       BlockCloseReason::Straggler);
            cw = m.confirmed.load(std::memory_order_acquire);
            conf = RndPos::unpack(cw);
            if (conf.rnd < cand_rnd && conf.pos != cap) {
                writeSkipMarker(blockData(cand % n), cand);
                ctrs.skips.fetch_add(1, std::memory_order_relaxed);
                cost += costs.copy(16);
                journalEmit(JournalEventKind::BlockSkip, core, cand,
                            conf.pos);
                if (++skips_in_a_row > max_skips)
                    return AdvanceResult::WouldBlock;
                continue;
            }
            if (conf.rnd >= cand_rnd)
                continue;
        }
        skips_in_a_row = 0;

        // Critical window: the block looked complete, but a later
        // candidate of the same metadata can lock it first — this CAS
        // must then fail, never double-lock.
        BTRACE_TEST_YIELD(AdvancePreLock);

        // Lock the block for our round (§4.2 step 4): Confirmed goes
        // from (old round, capacity) to (cand_rnd, 0).
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        if (!m.confirmed.compare_exchange_strong(
                cw, RndPos::pack(cand_rnd, 0),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
            ctrs.lockRaces.fetch_add(1, std::memory_order_relaxed);
            cost += costs.retryBackoff;
            continue;
        }

        // The block is locked for our round: journal the open here so
        // a graveyard close (lost install race below) still pairs an
        // open with its close in the timeline.
        journalEmit(JournalEventKind::BlockOpen, core, cand, 0);

        // Critical window: Confirmed is locked for the new round but
        // Allocated still shows the old one; reservations landing here
        // become stale and owe dummy obligations (§3.2).
        BTRACE_TEST_YIELD(AdvancePreReset);

        // Step 5: stamp the block header before any data write.
        uint8_t *blk = blockData(cand % n);
        writeBlockHeader(blk, cand);
        cost += costs.copy(16);

        // Step 6: reset Allocated for the new round. Stale fetch_adds
        // from other producers keep mutating the word, so loop.
        uint64_t aw = m.allocated.load(std::memory_order_acquire);
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        while (!m.allocated.compare_exchange_weak(
                   aw, RndPos::pack(cand_rnd,
                                    EntryLayout::blockHeaderBytes),
                   std::memory_order_acq_rel, std::memory_order_acquire)) {
            ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
            cost += costs.retryBackoff;
        }

        // Step 7: confirm the header bytes.
        m.confirmed.fetch_add(EntryLayout::blockHeaderBytes,
                              std::memory_order_acq_rel);
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        cost += costs.atomicLocal;

        // Critical window: the block is locked and initialized but not
        // yet installed; another thread of this core can install its
        // own block first, and ours must then be closed, not leaked.
        BTRACE_TEST_YIELD(AdvancePreInstall);

        // Step 8: hand the block to our core.
        uint64_t expected = local_word;
        ctrs.sharedRmws.fetch_add(1, std::memory_order_relaxed);
        if (!coreLocal[core]->compare_exchange_strong(
                expected, RatioPos::pack(g.ratio, false, cand),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
            // Another thread on this core already installed a block;
            // release ours by closing it and use theirs (§4.2, end).
            ctrs.coreRaces.fetch_add(1, std::memory_order_relaxed);
            closeRound(meta_idx, cand_rnd, cost,
                       BlockCloseReason::Graveyard);
            return AdvanceResult::LostRace;
        }

        ctrs.advances.fetch_add(1, std::memory_order_relaxed);
        return AdvanceResult::Advanced;
    }
}

} // namespace btrace
