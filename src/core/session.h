/**
 * @file
 * btrace::Session — the public entry point of the tracer (DESIGN.md
 * §11).
 *
 * A Session wraps one BTrace attachment behind a factory API that
 * reports failures as Status values instead of dying:
 *
 *   - Session::create(cfg)   — create a tracer (and, for shm/file
 *     storage, the shared arena that other processes can join);
 *   - Session::attachFile(p) — join the tracer living in the named
 *     file arena (the btraced rendezvous);
 *   - Session::attachFd(fd)  — join via an inherited/passed arena fd
 *     (the LTTng-style session-daemon handoff).
 *
 * Raw BTrace construction, shareFd() plumbing and attachShmArena()
 * remain available as internals, but sessions are the supported
 * surface: they validate the configuration, check arena compatibility
 * (magic, version, geometry, control region, generation) and never
 * BTRACE_FATAL on a malformed input.
 */

#ifndef BTRACE_CORE_SESSION_H
#define BTRACE_CORE_SESSION_H

#include <memory>
#include <string>

#include "common/status.h"
#include "core/btrace.h"

namespace btrace {

/** Options for Session::attachFile / Session::attachFd. */
struct AttachOptions
{
    /**
     * When nonzero, the attachment must draw exactly this generation
     * number from the arena header, else Incompatible. Lets a
     * coordinator that planned generation numbers (create = 1, first
     * attach = 2, ...) detect that the arena was recycled or that
     * another attacher raced in between.
     */
    uint64_t expectGeneration = 0;

    /** Cost model charged to this attachment's operations. */
    CostModel model = CostModel::def();
};

/**
 * One attachment of a (possibly multi-process) tracer. Move-only;
 * destroying the session detaches (the owner additionally stamps the
 * clean-shutdown mark). Access the tracer with operator-> or
 * tracer().
 */
class Session
{
  public:
    /**
     * Create a tracer from @p cfg. Configuration problems come back
     * as InvalidArgument (BTraceConfig::validate's documented rules);
     * OS-level storage failures (unopenable path, failed mmap) on the
     * arena backends come back as IoError.
     */
    static Expected<Session> create(
        const BTraceConfig &cfg,
        const CostModel &model = CostModel::def());

    /**
     * Attach to the tracer inside the named file arena: NotFound for
     * a missing path, Corruption/Incompatible for a damaged or
     * foreign file, Busy while the owner is still initializing or
     * when the attach registry is full.
     */
    static Expected<Session> attachFile(const std::string &path,
                                        const AttachOptions &opts = {});

    /**
     * Attach via an arena fd obtained from Session::shareFd() in the
     * creating process (inherited across fork/exec, or passed over a
     * unix socket). Same error contract as attachFile.
     */
    static Expected<Session> attachFd(int fd,
                                      const AttachOptions &opts = {});

    /** Empty session (valid() == false); Expected<Session> plumbing. */
    Session() = default;

    Session(Session &&) = default;
    Session &operator=(Session &&) = default;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    bool valid() const { return bt != nullptr; }

    BTrace &tracer() { return *bt; }
    const BTrace &tracer() const { return *bt; }
    BTrace *operator->() { return bt.get(); }
    const BTrace *operator->() const { return bt.get(); }

    /** True for the attachment that created the arena. */
    bool owner() const { return bt->arenaOwner(); }

    /** This attachment's arena generation (0 = private backend). */
    uint64_t generation() const { return bt->attachGeneration(); }

    /**
     * Arena fd for handing to another process (-1 on the private
     * backend). The fd stays owned by the session's backend.
     */
    int shareFd() const { return bt->storageBackend()->shareFd(); }

    /** Reclaim leases and registry slots of dead attachments. */
    SweepReport sweepDeadOwners() { return bt->sweepDeadOwners(); }

    /**
     * Runtime reconfiguration (DESIGN.md §12): validate and publish a
     * new control version for this attachment; on a shared arena it
     * is also written to the arena control page for everyone else.
     */
    Status applyControl(const ControlConfig &c)
    {
        return bt->applyControl(c);
    }

    /**
     * Adopt a control version published by another attachment, if
     * any. One relaxed load when nothing changed; call at a poll
     * cadence (lease renewal, drain tick), never per event.
     */
    bool pollControl() { return bt->pollControl(); }

  private:
    explicit Session(std::unique_ptr<BTrace> t) : bt(std::move(t)) {}

    std::unique_ptr<BTrace> bt;
};

} // namespace btrace

#endif // BTRACE_CORE_SESSION_H
