#include "core/session.h"

namespace btrace {

namespace {

/**
 * Shared tail of the attach paths: enforce the generation contract,
 * then hand the backend to BTrace::attachArena.
 */
Expected<std::unique_ptr<BTrace>>
finishAttach(std::unique_ptr<StorageBackend> backend,
             const AttachOptions &opts)
{
    if (opts.expectGeneration != 0 &&
        backend->attachGeneration() != opts.expectGeneration)
        return errIncompatible(
            "attach drew generation " +
            std::to_string(backend->attachGeneration()) +
            ", expected " + std::to_string(opts.expectGeneration) +
            " (arena recycled, or another attacher raced in)");
    return BTrace::attachArena(std::move(backend), opts.model);
}

} // namespace

Expected<Session>
Session::create(const BTraceConfig &cfg, const CostModel &model)
{
    if (Status st = cfg.validate(); !st.ok())
        return st;
    // Storage construction happens inside the BTrace constructor;
    // with the configuration pre-validated, the remaining failure
    // modes are OS-level (ENOSPC, unopenable path) and pre-date this
    // API as fatals. Probe the backend first for the file backend's
    // common case — an unwritable path — so it reports cleanly.
    if (cfg.storage == StorageKind::File && !cfg.arenaPath.empty()) {
        StorageOptions probe;
        probe.kind = cfg.storage;
        probe.bytes = cfg.effectiveMaxBlocks() * cfg.blockSize;
        probe.path = cfg.arenaPath;
        probe.ctrlBytes = ctrlBytesFor(cfg.cores, cfg.activeBlocks);
        auto b = tryMakeStorageBackend(probe);
        if (!b.ok())
            return b.status();
        // Drop the probe backend; BTrace re-creates the arena (the
        // create path truncates, so nothing from the probe survives).
    }
    return Expected<Session>(
        Session(std::make_unique<BTrace>(cfg, model)));
}

Expected<Session>
Session::attachFile(const std::string &path, const AttachOptions &opts)
{
    auto backend = tryAttachFileArena(path);
    if (!backend.ok())
        return backend.status();
    auto bt = finishAttach(backend.take(), opts);
    if (!bt.ok())
        return bt.status();
    return Expected<Session>(Session(bt.take()));
}

Expected<Session>
Session::attachFd(int fd, const AttachOptions &opts)
{
    auto backend = tryAttachShmArena(fd);
    if (!backend.ok())
        return backend.status();
    auto bt = finishAttach(backend.take(), opts);
    if (!bt.ok())
        return bt.status();
    return Expected<Session>(Session(bt.take()));
}

} // namespace btrace
