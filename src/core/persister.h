/**
 * @file
 * Asynchronous trace persistence (§2.1 "Persist vs. In-memory").
 *
 * Most smartphone tracing stays in memory, but userspace tracers also
 * support persisting via an asynchronous reader. TracePersister is
 * that reader: a background thread polls the incremental consumer
 * (Tracer::dumpFrom) and appends the decoded entries to a compact
 * binary file that load() reads back. Producers never block on
 * storage — exactly the decoupling the paper describes for
 * LTTng-style persist mode. Any Tracer works; BTrace's cursor is
 * genuinely incremental while the baselines snapshot-and-filter.
 */

#ifndef BTRACE_CORE_PERSISTER_H
#define BTRACE_CORE_PERSISTER_H

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "trace/tracer.h"

namespace btrace {

/** Knobs of the background persister. */
struct PersisterOptions
{
    /** Poll period of the reader thread. */
    double pollIntervalSec = 0.005;
    /**
     * Close partially filled blocks on each poll (§4.3). Without it
     * only completed blocks are persisted and the newest entries wait
     * in their active blocks.
     */
    bool closeActive = false;
};

/** Background reader persisting a tracer's buffer to a file. */
class TracePersister
{
  public:
    /** Start persisting @p tracer into @p path (truncates). */
    TracePersister(Tracer &tracer, const std::string &path,
                   const PersisterOptions &options = {});

    /** Stops and flushes if still running. */
    ~TracePersister();

    TracePersister(const TracePersister &) = delete;
    TracePersister &operator=(const TracePersister &) = delete;

    /**
     * Stop the reader: one final poll (with close-on-read so the tail
     * is captured), flush, close. Idempotent.
     */
    void stop();

    /** Entries persisted so far. */
    uint64_t persistedEntries() const
    {
        return persisted.load(std::memory_order_acquire);
    }

    /**
     * Read a persisted file back: NotFound / Corruption as a Status
     * (trace_file.h does the decoding; daemon segments read the same
     * way).
     */
    static Expected<std::vector<DumpEntry>>
    tryLoad(const std::string &path);

    /** tryLoad, fatal on any error (legacy convenience). */
    static std::vector<DumpEntry> load(const std::string &path);

  private:
    void run();
    void append(const std::vector<DumpEntry> &entries);

    Tracer &tracer;
    PersisterOptions opt;
    std::string path;
    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> persisted{0};
    DumpCursor cursor;
    int fd = -1;
    std::thread worker;
};

} // namespace btrace

#endif // BTRACE_CORE_PERSISTER_H
