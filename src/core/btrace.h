/**
 * @file
 * BTrace: the block-based mobile tracer (the paper's contribution).
 *
 * One global buffer is statically partitioned into N equally sized
 * data blocks; A metadata blocks (the *active blocks*, §3.2) are
 * mapped onto them with ratio N/A (§3.3). Each core owns one data
 * block at a time (core-local ratio_and_pos); producers on that core
 * reserve space with a single fetch_add on the block's Allocated word
 * and publish with a fetch_add on Confirmed (out-of-order confirmation,
 * §3.4/§4.1). When a block fills, the producer advances via a
 * fetch_add on the global ratio_and_pos, closing the lagging block of
 * the target metadata and skipping blocks held by preempted writers
 * (§4.2). Consumers read speculatively and re-validate (§4.3).
 * Resizing swings the Ratio after an implicit-reclamation quiesce
 * (§4.4).
 *
 * Position arithmetic: global position p (monotonic) maps to metadata
 * index p mod A, metadata round p / A, and data block p mod N, where
 * N = A * Ratio at the time p was handed out (RatioLog).
 */

#ifndef BTRACE_CORE_BTRACE_H
#define BTRACE_CORE_BTRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/cacheline.h"
#include "common/status.h"
#include "common/virtual_memory.h"
#include "control/control_plane.h"
#include "core/arena_control.h"
#include "core/config.h"
#include "core/epoch.h"
#include "core/metadata.h"
#include "core/ratio_log.h"
#include "obs/journal.h"
#include "trace/tracer.h"

namespace btrace {

/**
 * Internal event counters (all relaxed). Live atomics are private to
 * the tracer (and white-box tests); everyone else reads a coherent
 * value-type Snapshot via BTrace::countersSnapshot() — handing out the
 * atomic struct invites torn cross-field reads (field A before an
 * update, field B after it) that look like accounting violations.
 */
struct BTraceCounters
{
    std::atomic<uint64_t> fastAllocs{0};     //!< fast-path successes
    std::atomic<uint64_t> boundaryFills{0};  //!< §4.1 Fig 8c tail dummies
    std::atomic<uint64_t> staleAllocs{0};    //!< FAA landed in newer round
    std::atomic<uint64_t> advances{0};       //!< block advancements
    std::atomic<uint64_t> skips{0};          //!< §3.4 skipped blocks
    std::atomic<uint64_t> closes{0};         //!< §3.2 closed lagging blocks
    std::atomic<uint64_t> lockRaces{0};      //!< lost Confirmed lock CAS
    std::atomic<uint64_t> coreRaces{0};      //!< lost core-local install
    std::atomic<uint64_t> wouldBlock{0};     //!< Retry returned to caller
    std::atomic<uint64_t> dummyBytes{0};     //!< space lost to dummies
    std::atomic<uint64_t> resizes{0};
    /**
     * RMW instructions issued on shared words (metadata Allocated /
     * Confirmed, global and core-local ratio_and_pos) by the write
     * path. The single-entry path costs 2 per event (reserve FAA +
     * confirm FAA); a lease costs 2 per batch. Tests assert the
     * amortization on this counter.
     */
    std::atomic<uint64_t> sharedRmws{0};
    std::atomic<uint64_t> leases{0};         //!< batched leases granted
    std::atomic<uint64_t> leaseEntries{0};   //!< entries served from leases
    /** Bytes leased but not yet published by a lease close. */
    std::atomic<uint64_t> leasedOutstanding{0};

    /**
     * Value-type copy of the counters. Fields mirror the atomics
     * one-for-one; all loads are relaxed (each field individually
     * up-to-date, the set not a linearizable cut — fine for tests,
     * reports, and monitoring; quiesce first for exact accounting).
     */
    struct Snapshot
    {
        uint64_t fastAllocs = 0;
        uint64_t boundaryFills = 0;
        uint64_t staleAllocs = 0;
        uint64_t advances = 0;
        uint64_t skips = 0;
        uint64_t closes = 0;
        uint64_t lockRaces = 0;
        uint64_t coreRaces = 0;
        uint64_t wouldBlock = 0;
        uint64_t dummyBytes = 0;
        uint64_t resizes = 0;
        uint64_t sharedRmws = 0;
        uint64_t leases = 0;
        uint64_t leaseEntries = 0;
        uint64_t leasedOutstanding = 0;

        /**
         * Interval diff: this minus @p base, field by field. Counters
         * are monotonic so diffs of ordered snapshots are exact;
         * leasedOutstanding is a level, its diff is the (wrapping)
         * signed change over the interval.
         */
        Snapshot operator-(const Snapshot &base) const;
    };

    Snapshot snapshot() const;
};

/**
 * Occupancy of the A metadata slots at one instant (§3.2 terminology):
 * complete — current round fully confirmed; open — partially filled
 * with every reservation confirmed (a closer could shut it now);
 * incomplete — holding unconfirmed reservations (an in-flight writer,
 * an open lease, or a straggler). complete+open+incomplete == A.
 */
struct ActiveBlockOccupancy
{
    uint64_t complete = 0;
    uint64_t open = 0;
    uint64_t incomplete = 0;
};

/**
 * Outcome of one speculative block read (§4.3). The reader itself only
 * classifies; what a non-Data outcome *means* depends on the caller:
 * dump() charges Abandoned to Dump::abandonedBlocks, while dumpSince()
 * charges any vanished block at a position the producers have lapped
 * to Dump::overwrittenPositions — that data is permanently gone, not
 * merely unreadable right now.
 */
enum class BlockReadStatus
{
    Data,        //!< entries appended to the dump
    Empty,       //!< no valid header: never used, or decommitted
    Skipped,     //!< skip marker for a window position (§3.4)
    Stale,       //!< header names a position outside the window
    Unreadable,  //!< unconfirmed in-flight writes or corrupt state
    Abandoned,   //!< concurrent overwrite detected after the copy
};

/**
 * Raw state of one metadata slot at one instant (flight-recorder
 * bundles, DESIGN.md §9). Same monitoring-grade caveat as occupancy():
 * each word is read atomically, the pair is not a linearizable cut.
 */
struct MetaSlotState
{
    uint32_t allocRnd = 0;  //!< Allocated round
    uint32_t allocPos = 0;  //!< Allocated byte position
    uint32_t confRnd = 0;   //!< Confirmed round
    uint32_t confPos = 0;   //!< Confirmed byte position
};

/** Implementation of the Tracer interface per §3-§4 of the paper. */
class BTrace : public Tracer
{
  public:
    /**
     * Create a tracer that owns its buffer. Arena-backed storage
     * (shm / file) places the coordination state in the arena's
     * control region, making the instance multi-process capable;
     * other processes join via attachArena(). Internal API — prefer
     * btrace::Session::create (session.h), which reports invalid
     * configurations as a Status instead of dying.
     */
    explicit BTrace(const BTraceConfig &config,
                    const CostModel &model = CostModel::def());

    /**
     * Attach to the tracer living inside an existing arena (obtained
     * via tryAttachShmArena / tryAttachFileArena): bind the shared
     * control region, register this attachment in the producer
     * registry, and derive the geometry from the arena header. The
     * attachment can produce, consume, and sweep; it must not resize
     * (the RatioLog is per-process, see DESIGN.md §11). Internal API —
     * prefer btrace::Session::attachFile / attachFd.
     */
    static Expected<std::unique_ptr<BTrace>>
    attachArena(std::unique_ptr<StorageBackend> backend,
                const CostModel &model = CostModel::def());

    /**
     * Arena-backed instances stamp the header on the way out: current
     * block count, clean-shutdown mark, storage sync — so a reopened
     * file ring can tell a clean detach from a crash.
     */
    ~BTrace() override;

    std::string name() const override { return "BTrace"; }
    std::size_t capacityBytes() const override;

    WriteTicket allocate(uint16_t core, uint32_t thread,
                         uint32_t payload_len) override;
    void confirm(WriteTicket &ticket) override;
    void abandonWrite(WriteTicket &ticket) override;

    /**
     * Batched write claim (§4.1, amortized): one Allocated fetch_add
     * reserves a span sized for @p n entries of @p payload_hint
     * bytes; Lease::allocate serves from it with plain bump-pointer
     * arithmetic and Lease::close publishes everything with one
     * Confirmed fetch_add. An open lease keeps its block incomplete,
     * so closing (§3.2) and skipping (§3.4) bound the active set the
     * same way they do for a preempted single-entry writer; the span
     * granted never exceeds what is left of the current block.
     */
    Lease lease(uint16_t core, uint32_t thread, uint32_t payload_hint,
                uint32_t n) override;

    /**
     * Non-destructive snapshot: dumpFrom with a fresh cursor in
     * snapshot-peek mode (DumpOptions::readOpen) — every readable
     * block of the retention window, open blocks included, nothing
     * closed, no loss accounting.
     */
    Dump dump() override;

    /**
     * Incremental consumer read (§4.3, daemon-collector mode): return
     * the blocks completed at positions >= @p cursor, advancing
     * @p cursor past everything read. A cursor that fell behind the
     * overwrite frontier snaps forward to the last-N window and the
     * skipped span is charged to Dump::overwrittenPositions (data the
     * producers already overwrote).
     *
     * With DumpOptions::closeActive, non-filled blocks whose writes
     * are all confirmed are read too and then *closed* by filling
     * their remaining space with dummy data, exactly as the paper's
     * consumer does — producers move on to fresh blocks. Blocks with
     * unconfirmed in-flight writes are always skipped. With
     * DumpOptions::readOpen, such blocks are instead read in place
     * and the walk continues past them (snapshot semantics).
     */
    Dump dumpFrom(DumpCursor &cursor,
                  const DumpOptions &opts = {}) override;

    /** Legacy spelling of dumpFrom; use the DumpCursor overload. */
    [[deprecated("use dumpFrom(DumpCursor&, DumpOptions)")]]
    Dump dumpSince(uint64_t &cursor, bool close_active = false);

    /**
     * Resize the buffer to @p new_num_blocks data blocks (a multiple
     * of A, within [A, maxBlocks]). Blocking maintenance operation:
     * quiesces all active blocks, swings the ratio, and for shrinks
     * waits for consumer epochs before releasing physical memory
     * (§4.4). Producers keep running; only in-flight advancement backs
     * off briefly (see DESIGN.md §3). Multi-process arenas: only
     * allowed while this is the sole live attachment — the RatioLog
     * that maps positions to physical blocks is per-process, so other
     * attachments would mis-resolve post-resize positions.
     */
    void resize(std::size_t new_num_blocks);

    /**
     * Non-fatal resize for runtime actuation (the governor): the
     * preconditions resize() asserts come back as a Status instead —
     * InvalidArgument for a target that is not a multiple of A inside
     * [A, maxBlocks], Busy for a shared arena with other live
     * attachments (the per-process RatioLog rule). On Ok the resize
     * has completed.
     */
    Status tryResize(std::size_t new_num_blocks);

    /**
     * Apply a new control configuration (DESIGN.md §12): validated,
     * versioned, swapped in atomically for this attachment, and — on
     * a shared arena — published to the arena control page so every
     * other attachment converges on its next pollControl().
     */
    Status applyControl(const ControlConfig &next)
    {
        return plane->apply(next);
    }

    /**
     * Adopt a control version another attachment published to the
     * arena page, if any. One relaxed load when nothing changed; call
     * at poll cadence (lease renewal, drain ticks), never per event.
     */
    bool pollControl() { return plane->poll(); }

    /** The attachment's control plane (history, tallies, metrics). */
    ControlPlane &controlPlane() { return *plane; }
    const ControlPlane &controlPlane() const { return *plane; }

    /**
     * Scan the arena's lease-owner table and attach registry for dead
     * owners (registry slot gone, or kill(pid, 0) says the process no
     * longer exists) and reclaim their leased spans: dummy-fill the
     * span, confirm it on the dead owner's behalf, and close the
     * block through the graveyard path so the active set recovers
     * (DESIGN.md §11). Safe from any attachment, concurrently with
     * producers; serialized per record by a CAS. No-op (all-zero
     * report) on a private-backend tracer.
     */
    SweepReport sweepDeadOwners();

    /** True when the coordination state lives in a shared arena. */
    bool multiprocess() const { return shared; }

    /** This attachment's unique arena generation number (0=private). */
    uint64_t attachGeneration() const { return attachGen; }

    /** True for the attachment that created and initialized the arena. */
    bool arenaOwner() const { return owner_; }

    /** Current number of data blocks (N). */
    std::size_t numBlocks() const;

    const BTraceConfig &config() const { return cfg; }

    /** Coherent value-type copy of the event counters. */
    BTraceCounters::Snapshot countersSnapshot() const
    {
        return ctrs.snapshot();
    }

    /** Global advancement position (candidates handed out so far). */
    uint64_t headPosition() const;

    /** Classify every metadata slot (observability plane; relaxed). */
    ActiveBlockOccupancy occupancy() const;

    /** Raw per-slot metadata words (flight recorder; relaxed). */
    std::vector<MetaSlotState> slotStates() const;

    /**
     * Allocation-free variant for async-safe captures: fill at most
     * @p max entries of @p out and return the count written.
     */
    std::size_t slotStatesInto(MetaSlotState *out,
                               std::size_t max) const noexcept;

    /** Storage backend of the data area (never null). */
    StorageBackend *storageBackend() const { return span.backend(); }

    /** Arena header, or nullptr on the private backend. */
    ArenaHeader *arenaHeader() const
    {
        return span.backend()->header();
    }

    /**
     * Copy a rendered flight bundle into the arena's flight region
     * (truncating to its capacity) and publish its length, so the
     * bundle survives process death inside a file-backed ring. False
     * when the backend has no arena (private memory). Async-safe:
     * memcpy, two atomic stores, and the backend sync — no locks, no
     * allocation.
     */
    bool writeFlightToArena(const char *bundle,
                            std::size_t len) noexcept;

    /**
     * Attach (nullptr detaches) a lifecycle event journal (DESIGN.md
     * §9). The journal receives block open/close/skip, lease
     * grant/revoke/abandon, resize and reclaim transitions. The hot
     * path pays one relaxed pointer load per transition site and the
     * journal adds zero RMWs on the tracer's shared words — the
     * sharedRmws counter is identical with and without a journal
     * (asserted by test, same bar as the TracerObserver).
     */
    void attachJournal(EventJournal *journal)
    {
        jnl.store(journal, std::memory_order_release);
    }

    EventJournal *attachedJournal() const
    {
        return jnl.load(std::memory_order_acquire);
    }

    /** Resident physical memory of the data area, in bytes. */
    std::size_t residentBytes() const { return span.residentBytes(); }

  protected:
    void leaseClose(Lease &l) override;

  private:
    friend class BTraceInspector;  //!< white-box test access
    friend class BTraceAuditor;    //!< post-quiesce invariant checker

    /**
     * Live atomic counters. Test-only: white-box friends may read the
     * atomics directly; every other consumer goes through
     * countersSnapshot() to avoid torn cross-field reads.
     */
    const BTraceCounters &counters() const { return ctrs; }

    enum class AdvanceResult { Advanced, LostRace, WouldBlock };

    /** Tag selecting the attach-to-existing-arena constructor. */
    struct AttachTag
    {
    };

    /**
     * Attach-mode constructor (attachArena only): adopt @p backend,
     * bind the already-initialized control region, and derive the
     * geometry from the arena header. Registration in the producer
     * registry is NOT done here — attachArena() calls
     * registerAttachment() afterwards so a full table surfaces as a
     * Status instead of a fatal.
     */
    BTrace(AttachTag, std::unique_ptr<StorageBackend> backend,
           const BTraceConfig &derived, const CostModel &model);

    /** Build the storage span described by @p config. */
    static VirtualSpan makeSpan(const BTraceConfig &config);

    /**
     * Point meta/global/coreLocal at the control region (arena
     * backends) or at a private heap blob of the same layout.
     */
    void bindControl();

    /** Claim a ProducerSlot; false when the registry is full. */
    bool registerAttachment(bool is_owner);

    /** Clear this attachment's ProducerSlot (clean detach). */
    void deregisterAttachment();

    /**
     * Liveness of the attachment that drew @p gen: true iff its
     * registry slot is present and its pid still exists. A missing
     * slot means a clean detach (leases were closed first), so its
     * leases — if any record still names it — are reclaimable.
     */
    bool attachmentAlive(uint64_t gen) const;

    /**
     * Stamp an owner record for a just-granted lease span. Returns
     * index+1 (stored in TicketHandle::aux; 0 = untracked, table
     * full — the lease proceeds exactly like a pre-owner-table one).
     */
    uint32_t registerLeaseOwner(uint32_t slot, uint32_t rnd,
                                uint32_t span_start, uint32_t span_len,
                                uint64_t block_pos);

    /**
     * Offset-based address of physical block @p phys — the form that
     * is meaningful in every attachment of a shared arena and in an
     * offline ArenaView, unlike a raw pointer (DESIGN.md §10).
     */
    BlockRef blockRefOf(uint64_t phys) const
    {
        return BlockRef{phys * cap};
    }

    /** Data area of physical block @p phys in this attachment. */
    uint8_t *blockData(uint64_t phys);
    const uint8_t *blockData(uint64_t phys) const;

    /** Physical block of global position @p pos (via the RatioLog). */
    uint64_t physicalOf(uint64_t pos) const;

    /**
     * Close the block of round @p rnd on metadata @p meta_idx: claim
     * the remaining space, fill it with a dummy entry, and confirm it
     * (§3.2). No-op if the metadata has moved past @p rnd or the block
     * is already fully allocated. @p reason is journaled with the
     * BlockClose event when the close actually lands.
     */
    void closeRound(std::size_t meta_idx, uint32_t rnd, double &cost,
                    BlockCloseReason reason);

    /**
     * The single relaxed enabled check of the journal plane: one
     * relaxed pointer load; emits only when a journal is attached.
     * Never touches the tracer's shared words.
     */
    void journalEmit(JournalEventKind kind, uint16_t core,
                     uint64_t block, uint64_t arg) const
    {
        if (EventJournal *j = jnl.load(std::memory_order_relaxed);
            j != nullptr)
            j->emit(kind, core, block, arg);
    }

    /**
     * Find, lock, and install a fresh data block for @p core (§4.2).
     * @p local_word is the core-local snapshot the caller acted on.
     */
    AdvanceResult tryAdvance(uint16_t core, uint64_t local_word,
                             double &cost);

    /**
     * tryAdvance under a retry-phase probe (DESIGN.md §14): the
     * advancement/backoff work a writer performs when its block is
     * exhausted or stolen is the fast path's "retry" cost bucket.
     * @p pf is the caller's one activeProfiler() load; disarmed this
     * is tryAdvance plus a predicted branch.
     */
    AdvanceResult
    timedAdvance(CostProfiler *pf, uint16_t core, uint64_t local_word,
                 double &cost)
    {
        PhaseProbe probe(pf, ProfilePhase::Retry);
        return tryAdvance(core, local_word, cost);
    }

    /**
     * Speculative consumer read of one physical block (§4.3).
     * Appends parsed entries and tallies skipped/unreadable blocks on
     * @p out; an Abandoned outcome is returned *unclassified* — the
     * caller decides whether it is a transient abandoned read (dump)
     * or permanently overwritten data (dumpSince at a lapped
     * position).
     */
    BlockReadStatus readBlock(uint64_t phys, uint64_t window_start,
                              uint64_t window_end,
                              std::vector<uint8_t> &scratch, Dump &out);

    BTraceConfig cfg;
    std::size_t cap;           //!< block capacity bytes (= cfg.blockSize)
    std::size_t numActive;     //!< A
    std::size_t maxN;          //!< resize ceiling in blocks

    VirtualSpan span;

    /**
     * Coordination state (§3.2's A metadata blocks, the global packed
     * RatioPos, and the per-core words). The pointers resolve into the
     * arena's control region for shm/file backends — the very same
     * cache lines in every attachment — and into ctrlHeap for the
     * private backend. Bound once by bindControl(); the access syntax
     * (meta[i], global->load, coreLocal[c]->store) is identical either
     * way.
     */
    ControlView ctrl;
    MetadataBlock *meta = nullptr;
    std::atomic<uint64_t> *global = nullptr;  //!< RatioPos packed
    CacheAligned<std::atomic<uint64_t>> *coreLocal = nullptr;
    /** Private-backend backing for the control layout (else null). */
    std::unique_ptr<uint8_t, void (*)(uint8_t *)> ctrlHeap{
        nullptr, +[](uint8_t *) {}};

    bool shared = false;   //!< control state lives in a shared arena
    bool owner_ = true;    //!< this attachment created the arena
    uint64_t attachGen = 0;  //!< generation drawn at map time (0=private)
    uint32_t pid_ = 0;
    /** Index of this attachment's ProducerSlot (registry). */
    std::size_t producerSlotIdx = 0;

    RatioLog ratioLog;
    std::mutex resizeMutex;
    EpochRegistry consumers;
    BTraceCounters ctrs;
    /** Lifecycle journal; nullptr = disabled (the common fast path). */
    std::atomic<EventJournal *> jnl{nullptr};
    /**
     * Runtime control plane (DESIGN.md §12). Constructed by both
     * constructors once the control region is bound — never null
     * afterwards. With all knobs at defaults it publishes a nullptr
     * snapshot, so the record path stays byte-identical to a build
     * without the plane (ControlContract test).
     */
    std::unique_ptr<ControlPlane> plane;
};

} // namespace btrace

#endif // BTRACE_CORE_BTRACE_H
