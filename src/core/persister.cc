#include "core/persister.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "trace/trace_file.h"

namespace btrace {

TracePersister::TracePersister(Tracer &tracer_, const std::string &path_,
                               const PersisterOptions &options)
    : tracer(tracer_), opt(options), path(path_)
{
    fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                0644);
    if (fd < 0)
        BTRACE_FATAL("cannot open persistence file");
    if (Status st = writeTraceFileHeader(fd); !st.ok())
        BTRACE_FATAL("cannot write persistence header");
    worker = std::thread([this]() { run(); });
}

TracePersister::~TracePersister()
{
    stop();
}

void
TracePersister::run()
{
    const auto interval = std::chrono::duration<double>(
        opt.pollIntervalSec);
    while (!stopping.load(std::memory_order_acquire)) {
        const Dump d = tracer.dumpFrom(
            cursor, DumpOptions{opt.closeActive, false});
        append(d.entries);
        std::this_thread::sleep_for(interval);
    }
}

void
TracePersister::append(const std::vector<DumpEntry> &entries)
{
    if (entries.empty())
        return;
    if (Status st = appendTraceRecords(fd, entries); !st.ok())
        BTRACE_FATAL("short write to persistence file");
    persisted.fetch_add(entries.size(), std::memory_order_acq_rel);
}

void
TracePersister::stop()
{
    if (fd < 0)
        return;
    stopping.store(true, std::memory_order_release);
    if (worker.joinable())
        worker.join();
    // Final poll with close-on-read so the newest entries land too.
    const Dump d = tracer.dumpFrom(cursor, DumpOptions{true, false});
    append(d.entries);
    ::close(fd);
    fd = -1;
}

Expected<std::vector<DumpEntry>>
TracePersister::tryLoad(const std::string &path)
{
    return readTraceFile(path);
}

std::vector<DumpEntry>
TracePersister::load(const std::string &path)
{
    auto r = readTraceFile(path);
    if (!r.ok()) {
        std::fprintf(stderr, "btrace: %s\n",
                     r.status().toString().c_str());
        BTRACE_FATAL("cannot load persisted trace");
    }
    return r.take();
}

} // namespace btrace
