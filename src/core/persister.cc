#include "core/persister.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace btrace {

namespace {

constexpr uint64_t fileMagic = 0x31765052'54425442ull;  // "BTBTRPv1"

/** Fixed 24-byte on-disk record. */
struct DiskRecord
{
    uint64_t stamp;
    uint32_t size;
    uint16_t core;
    uint16_t category;
    uint32_t thread;
    uint32_t flags;  // bit 0: payloadOk
};

static_assert(sizeof(DiskRecord) == 24, "disk record must be packed");

} // namespace

TracePersister::TracePersister(Tracer &tracer_, const std::string &path_,
                               const PersisterOptions &options)
    : tracer(tracer_), opt(options), path(path_)
{
    fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        BTRACE_FATAL("cannot open persistence file");
    if (::write(fd, &fileMagic, sizeof(fileMagic)) !=
        ssize_t(sizeof(fileMagic)))
        BTRACE_FATAL("cannot write persistence header");
    worker = std::thread([this]() { run(); });
}

TracePersister::~TracePersister()
{
    stop();
}

void
TracePersister::run()
{
    const auto interval = std::chrono::duration<double>(
        opt.pollIntervalSec);
    while (!stopping.load(std::memory_order_acquire)) {
        const Dump d = tracer.dumpFrom(cursor, opt.closeActive);
        append(d.entries);
        std::this_thread::sleep_for(interval);
    }
}

void
TracePersister::append(const std::vector<DumpEntry> &entries)
{
    if (entries.empty())
        return;
    std::vector<DiskRecord> records;
    records.reserve(entries.size());
    for (const DumpEntry &e : entries) {
        records.push_back(DiskRecord{e.stamp, e.size, e.core,
                                     e.category, e.thread,
                                     e.payloadOk ? 1u : 0u});
    }
    const auto bytes = records.size() * sizeof(DiskRecord);
    if (::write(fd, records.data(), bytes) != ssize_t(bytes))
        BTRACE_FATAL("short write to persistence file");
    persisted.fetch_add(entries.size(), std::memory_order_acq_rel);
}

void
TracePersister::stop()
{
    if (fd < 0)
        return;
    stopping.store(true, std::memory_order_release);
    if (worker.joinable())
        worker.join();
    // Final poll with close-on-read so the newest entries land too.
    const Dump d = tracer.dumpFrom(cursor, true);
    append(d.entries);
    ::close(fd);
    fd = -1;
}

std::vector<DumpEntry>
TracePersister::load(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        BTRACE_FATAL("cannot open persisted trace");
    uint64_t magic = 0;
    if (::read(fd, &magic, sizeof(magic)) != ssize_t(sizeof(magic)) ||
        magic != fileMagic) {
        ::close(fd);
        BTRACE_FATAL("not a btrace persistence file");
    }

    std::vector<DumpEntry> out;
    DiskRecord rec;
    for (;;) {
        const ssize_t got = ::read(fd, &rec, sizeof(rec));
        if (got == 0)
            break;
        if (got != ssize_t(sizeof(rec))) {
            ::close(fd);
            BTRACE_FATAL("truncated persistence record");
        }
        out.push_back(DumpEntry{rec.stamp, rec.size, rec.core,
                                rec.thread, rec.category,
                                (rec.flags & 1u) != 0});
    }
    ::close(fd);
    return out;
}

} // namespace btrace
