/**
 * @file
 * Post-quiesce invariant checker for BTrace's lock-free accounting.
 *
 * The completeness invariant (DESIGN.md §3) says every byte of a
 * block's capacity is confirmed exactly once — by its writer, by a
 * boundary dummy fill, or by a closing fill. The auditor validates
 * that and its consequences against the actual buffer contents:
 *
 *  - per metadata block: Allocated/Confirmed rounds agree, every
 *    reservation within capacity is confirmed, and the confirmed
 *    byte count equals the exact entry tiling of the managed data
 *    block (header + normal + dummy bytes);
 *  - round monotonicity: no metadata claims a round whose candidate
 *    position was never handed out by the global counter;
 *  - window consistency: no two physical blocks carry the same global
 *    position, and every header maps back to its own physical block;
 *  - counter consistency: event counters cannot exceed what the
 *    consumed candidate positions could have produced, and visible
 *    dummy/skip artifacts cannot exceed their cumulative counters.
 *
 * The tracer must be quiescent (no in-flight producers, consumers, or
 * resizes) when audit() runs: the checker reads metadata and block
 * bytes non-atomically and treats every transient intermediate state
 * as a violation.
 */

#ifndef BTRACE_CORE_AUDITOR_H
#define BTRACE_CORE_AUDITOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/btrace.h"

namespace btrace {

/** Byte accounting aggregated over the currently live rounds. */
struct AuditTotals
{
    uint64_t confirmedBytes = 0;   //!< sum of Confirmed.pos over metadata
    uint64_t headerBytes = 0;      //!< block-header bytes tiled
    uint64_t normalBytes = 0;      //!< normal-entry bytes tiled
    uint64_t dummyBytes = 0;       //!< dummy-entry bytes tiled
    uint64_t completeBlocks = 0;   //!< live rounds with Confirmed == cap
    uint64_t partialBlocks = 0;    //!< live rounds still open
    /** Bytes reserved but unconfirmed, attributable to leases. */
    uint64_t leasedBytes = 0;
    uint64_t sacrificedBlocks = 0; //!< live rounds scribbled by SKP (§3.4)
    uint64_t reclaimedBlocks = 0;  //!< live rounds decommitted by a shrink
};

/** Outcome of one audit pass. */
struct AuditReport
{
    std::vector<std::string> violations;
    AuditTotals totals;

    bool ok() const { return violations.empty(); }

    /** Human-readable multi-line digest (for test failure output). */
    std::string summary() const;
};

/** Validates global accounting of a quiesced BTrace instance. */
class BTraceAuditor
{
  public:
    explicit BTraceAuditor(BTrace &tracer) : bt(tracer) {}

    /** Run every check; the tracer must be quiescent. */
    AuditReport audit() const;

  private:
    BTrace &bt;
};

} // namespace btrace

#endif // BTRACE_CORE_AUDITOR_H
