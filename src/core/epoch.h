/**
 * @file
 * Epoch-based reclamation for consumers (§4.4).
 *
 * Producers need no epochs — block completion is their implicit epoch
 * boundary (§3.3). Consumers, being off the critical path, use a
 * conventional EBR: a consumer holds an odd epoch value while reading;
 * the shrinker snapshots all slots and waits until every slot is even
 * or has moved on before decommitting memory.
 */

#ifndef BTRACE_CORE_EPOCH_H
#define BTRACE_CORE_EPOCH_H

#include <array>
#include <atomic>
#include <thread>

#include "common/cacheline.h"
#include "common/panic.h"

namespace btrace {

/** Registry of consumer epochs with a bounded number of slots. */
class EpochRegistry
{
  public:
    static constexpr std::size_t slotCount = 16;

    /** RAII read-side critical section. */
    class Guard
    {
      public:
        explicit Guard(EpochRegistry &reg) : registry(reg)
        {
            slot = registry.claimSlot();
            registry.epochs[slot]->fetch_add(1, std::memory_order_acq_rel);
        }

        ~Guard()
        {
            registry.epochs[slot]->fetch_add(1, std::memory_order_acq_rel);
            registry.releaseSlot(slot);
        }

        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        EpochRegistry &registry;
        std::size_t slot;
    };

    /** Block until every reader active at call time has exited. */
    void
    synchronize()
    {
        std::array<uint64_t, slotCount> snap;
        for (std::size_t i = 0; i < slotCount; ++i)
            snap[i] = epochs[i]->load(std::memory_order_acquire);
        for (std::size_t i = 0; i < slotCount; ++i) {
            if (snap[i] % 2 == 0)
                continue;  // quiescent at snapshot time
            while (epochs[i]->load(std::memory_order_acquire) == snap[i])
                std::this_thread::yield();
        }
    }

  private:
    std::size_t
    claimSlot()
    {
        for (;;) {
            for (std::size_t i = 0; i < slotCount; ++i) {
                bool expected = false;
                if (occupied[i]->compare_exchange_strong(
                        expected, true, std::memory_order_acq_rel))
                    return i;
            }
            std::this_thread::yield();
        }
    }

    void
    releaseSlot(std::size_t slot)
    {
        occupied[slot]->store(false, std::memory_order_release);
    }

    std::array<CacheAligned<std::atomic<uint64_t>>, slotCount> epochs{};
    std::array<CacheAligned<std::atomic<bool>>, slotCount> occupied{};
};

} // namespace btrace

#endif // BTRACE_CORE_EPOCH_H
