/**
 * @file
 * The arena *control region*: BTrace's shared rendezvous state, laid
 * out inside a shm/file arena so that multiple processes mapping the
 * same arena drive one tracer (DESIGN.md §11).
 *
 * For the process-private backend the tracer's coordination words
 * (global ratio_and_pos, core-local words, the A metadata blocks)
 * live on the heap, as they always have. For arena backends they live
 * here, between the flight region and the data area, so every
 * attachment resolves the *same* words — std::atomic<uint64_t> is
 * address-free on every platform this library targets, which is what
 * makes a mapped atomic valid across address spaces.
 *
 * The region also holds the two robustness tables that make
 * multi-process tracing crash-safe:
 *
 *  - the *producer attach registry* (ProducerSlot): one record per
 *    live attachment, keyed by the arena generation number the
 *    attachment drew when it mapped the arena. An attachment that
 *    detaches cleanly clears its slot; a slot whose pid is gone marks
 *    a crashed attachment.
 *  - the *lease-owner table* (LeaseOwnerRecord): one record per open
 *    lease, robust-futex-style. A granted lease stamps pid + attach
 *    generation + a monotonic lease sequence before first use; any
 *    attachment can later prove the owner dead (registry slot gone,
 *    or kill(pid, 0) == ESRCH) and reclaim the leased span through
 *    the graveyard-close path (sweeper.cc).
 *
 * None of the owner-table traffic touches the tracer's data-path
 * words, and none of it is charged to the sharedRmws counter: it is a
 * robustness plane, like the journal, not part of the §4.1 write
 * protocol. The private backend never executes any of it.
 */

#ifndef BTRACE_CORE_ARENA_CONTROL_H
#define BTRACE_CORE_ARENA_CONTROL_H

#include <atomic>
#include <cstdint>

#include "common/cacheline.h"
#include "core/metadata.h"

namespace btrace {

/**
 * One live attachment of the arena (a producer, a consumer daemon, or
 * the owner). attachGen doubles as the occupancy word: 0 = free slot,
 * otherwise the unique generation number the attachment drew from
 * ArenaHeader::generation when it mapped the arena.
 */
struct alignas(cacheLineSize) ProducerSlot
{
    std::atomic<uint64_t> attachGen{0};
    std::atomic<uint32_t> pid{0};
    /** Bit 0: owner (created the arena). Bit 1: consumer-only. */
    std::atomic<uint32_t> flags{0};

    static constexpr uint32_t kOwnerFlag = 1u << 0;
    static constexpr uint32_t kConsumerFlag = 1u << 1;
};

/**
 * Ownership stamp of one open lease. State machine:
 *
 *     Free -> Claimed -> Active -> Closing -> Free     (normal close)
 *                          \
 *                           -> Reclaiming -> Free      (sweeper, owner
 *                                                       proved dead)
 *
 * The producer claims a Free record with one CAS, fills the stamp
 * fields, and publishes Active with a release store. leaseClose moves
 * Active -> Closing immediately before the bulk Confirmed fetch_add
 * and frees the record after it, so a sweeper never reclaims (and
 * never double-confirms) a span whose publish already landed: the
 * sweeper only ever claims records still in Active. Death inside the
 * few-instruction Closing window leaves a record the sweeper frees
 * without touching the block (the block is sacrificed, exactly like a
 * pre-existing untracked death); see DESIGN.md §11 for the safety
 * argument.
 */
struct alignas(cacheLineSize) LeaseOwnerRecord
{
    enum State : uint32_t
    {
        Free = 0,
        Claimed = 1,    //!< CAS won, stamp fields being written
        Active = 2,     //!< lease open; stamp fields valid
        Closing = 3,    //!< owner is publishing its confirm
        Reclaiming = 4, //!< a sweeper proved the owner dead
    };

    std::atomic<uint32_t> state{Free};
    std::atomic<uint32_t> pid{0};
    std::atomic<uint64_t> attachGen{0};
    std::atomic<uint64_t> leaseSeq{0};
    /** Metadata slot index and round the lease's span belongs to. */
    std::atomic<uint32_t> slot{0};
    std::atomic<uint32_t> round{0};
    /** Leased span inside the block: [spanStart, spanStart+spanLen). */
    std::atomic<uint32_t> spanStart{0};
    std::atomic<uint32_t> spanLen{0};
    /** Global position the span's block was opened for. */
    std::atomic<uint64_t> blockPos{0};
};

static_assert(sizeof(ProducerSlot) == cacheLineSize,
              "one attachment record per cache line");
static_assert(sizeof(LeaseOwnerRecord) == cacheLineSize,
              "one lease stamp per cache line");

/** First cache lines of the control region. */
struct alignas(cacheLineSize) ControlHeader
{
    static constexpr uint64_t kMagic = 0x314C525443544224ull; // "$BTCTRL1"
    /** v2 added the control page (runtime-tuning snapshots, §12). */
    static constexpr uint32_t kVersion = 2;

    uint64_t magic = 0;
    uint32_t version = 0;
    /** Geometry the region was sized for; attachments must match. */
    uint32_t cores = 0;
    uint64_t activeBlocks = 0;
    /**
     * 0 while the owner initializes the region, 1 (release) once the
     * tracer state is live. Attachments require 1: the data words are
     * only meaningful after the owner's initialization published.
     */
    std::atomic<uint32_t> ready{0};
    uint32_t reserved0 = 0;
    /** Monotonic lease sequence; stamps LeaseOwnerRecord::leaseSeq. */
    std::atomic<uint64_t> leaseSeq{0};
    /** Dead-producer sweeps completed (any attachment). */
    std::atomic<uint64_t> sweeps{0};
    /** Leases ever reclaimed from dead owners. */
    std::atomic<uint64_t> reclaimedLeases{0};
};

/** Fixed table sizes; generous for the session-daemon deployments. */
constexpr std::size_t kMaxAttachments = 64;
constexpr std::size_t kLeaseOwnerSlots = 256;

/**
 * One serialized ControlSnapshot in the arena's control page
 * (DESIGN.md §12): the wire form an out-of-process operator's
 * applyControl leaves for every live producer to poll. Fields mirror
 * ControlConfig, rates in 32.32 fixed point (control/snapshot.h);
 * category overrides use ~0ull for "inherit".
 *
 * seqlock discipline: the writer (who claimed this entry's version
 * via ControlPage::publishCount) bumps seq to odd, release-stores the
 * fields, then release-stores seq = 2 * version. A reader that sees
 * an even seq, copies, and re-reads the same seq has a torn-free
 * entry; anything else means a writer was mid-flight — retry or skip.
 */
struct ControlPageEntry
{
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> appliedNs{0};
    std::atomic<uint64_t> sampleRateFx{0};
    std::atomic<uint64_t> categoryRateFx[16]{};
    std::atomic<uint64_t> firstK{0};
    std::atomic<uint64_t> intervalNs{0};
    std::atomic<uint64_t> recordBudget{0};
    std::atomic<uint64_t> ringMinBlocks{0};
    std::atomic<uint64_t> ringMaxBlocks{0};
    /** Bit 0: journal enabled. Bit 1: watchdog enabled. */
    std::atomic<uint64_t> flags{0};

    static constexpr uint64_t kInheritRate = ~uint64_t(0);
    static constexpr uint64_t kJournalFlag = 1u << 0;
    static constexpr uint64_t kWatchdogFlag = 1u << 1;
};

/**
 * The control page: a publish counter plus a small history ring of
 * snapshot entries. Writers claim version = publishCount.fetch_add(1)
 * + 1 and fill entries[(version - 1) % kControlHistory]; concurrent
 * publishers from different processes therefore never share an entry
 * (a collision needs one writer to lag kControlHistory whole
 * publishes behind — such an entry fails its seqlock check and is
 * skipped). Readers poll publishCount with one relaxed load; nothing
 * here is ever touched by the per-event write path.
 */
constexpr std::size_t kControlHistory = 8;

struct alignas(cacheLineSize) ControlPage
{
    std::atomic<uint64_t> publishCount{0};
    ControlPageEntry entries[kControlHistory];
};

/**
 * Byte offsets of the control region's sections. All sections are
 * 128-byte aligned so MetadataBlock's alignas(128) holds inside any
 * page-aligned region base.
 */
struct ControlLayout
{
    std::size_t producersOff = 0;
    std::size_t ownersOff = 0;
    std::size_t globalOff = 0;
    std::size_t coreLocalOff = 0;
    std::size_t metaOff = 0;
    std::size_t controlPageOff = 0;
    std::size_t totalBytes = 0;

    static constexpr ControlLayout
    compute(unsigned cores, std::size_t active_blocks)
    {
        constexpr std::size_t align = 128;
        ControlLayout l;
        std::size_t off = alignUp(sizeof(ControlHeader), align);
        l.producersOff = off;
        off = alignUp(off + kMaxAttachments * sizeof(ProducerSlot),
                      align);
        l.ownersOff = off;
        off = alignUp(off + kLeaseOwnerSlots * sizeof(LeaseOwnerRecord),
                      align);
        l.globalOff = off;
        off = alignUp(
            off + sizeof(CacheAligned<std::atomic<uint64_t>>), align);
        l.coreLocalOff = off;
        off = alignUp(
            off + cores * sizeof(CacheAligned<std::atomic<uint64_t>>),
            align);
        l.metaOff = off;
        off = alignUp(off + active_blocks * sizeof(MetadataBlock),
                      align);
        l.controlPageOff = off;
        off += sizeof(ControlPage);
        l.totalBytes = off;
        return l;
    }
};

/** Control-region bytes a tracer of this geometry needs. */
constexpr std::size_t
ctrlBytesFor(unsigned cores, std::size_t active_blocks)
{
    return ControlLayout::compute(cores, active_blocks).totalBytes;
}

/**
 * Typed pointers into one attachment's mapping of the control region
 * (or into the private backend's heap blob — same layout, so the
 * tracer binds its state pointers uniformly).
 */
struct ControlView
{
    ControlHeader *hdr = nullptr;
    ProducerSlot *producers = nullptr;
    LeaseOwnerRecord *owners = nullptr;
    CacheAligned<std::atomic<uint64_t>> *global = nullptr;
    CacheAligned<std::atomic<uint64_t>> *coreLocal = nullptr;
    MetadataBlock *meta = nullptr;
    ControlPage *page = nullptr;

    static ControlView
    bind(uint8_t *base, unsigned cores, std::size_t active_blocks)
    {
        const ControlLayout l =
            ControlLayout::compute(cores, active_blocks);
        ControlView v;
        v.hdr = reinterpret_cast<ControlHeader *>(base);
        v.producers =
            reinterpret_cast<ProducerSlot *>(base + l.producersOff);
        v.owners =
            reinterpret_cast<LeaseOwnerRecord *>(base + l.ownersOff);
        v.global =
            reinterpret_cast<CacheAligned<std::atomic<uint64_t>> *>(
                base + l.globalOff);
        v.coreLocal =
            reinterpret_cast<CacheAligned<std::atomic<uint64_t>> *>(
                base + l.coreLocalOff);
        v.meta = reinterpret_cast<MetadataBlock *>(base + l.metaOff);
        v.page =
            reinterpret_cast<ControlPage *>(base + l.controlPageOff);
        return v;
    }
};

/** Outcome of one dead-owner sweep (BTrace::sweepDeadOwners). */
struct SweepReport
{
    /** Active records whose owner was proved dead and reclaimed. */
    uint64_t reclaimedLeases = 0;
    /** Bytes confirmed on behalf of dead owners. */
    uint64_t reclaimedBytes = 0;
    /** Crashed attachments whose registry slot was cleared. */
    uint64_t clearedAttachments = 0;
    /** Dead records caught mid-Closing: freed, block sacrificed. */
    uint64_t ambiguousCloses = 0;
    /** Records whose round had already completed: freed untouched. */
    uint64_t staleRecords = 0;
};

} // namespace btrace

#endif // BTRACE_CORE_ARENA_CONTROL_H
