/**
 * @file
 * Speculative consumer (§4.3): copy a block optimistically with
 * relaxed atomic word loads, then re-validate the block header and the
 * metadata; abandon the block on any sign of concurrent overwrite.
 */

#include <algorithm>
#include <atomic>

#include "common/sanitize.h"
#include "common/test_hooks.h"
#include "core/btrace.h"

namespace btrace {

namespace {

uint64_t
loadSharedWord(const uint8_t *src)
{
    return std::atomic_ref<const uint64_t>(
               *reinterpret_cast<const uint64_t *>(src))
        .load(std::memory_order_relaxed);
}

} // namespace

BlockReadStatus
BTrace::readBlock(uint64_t phys, uint64_t window_start,
                  uint64_t window_end, std::vector<uint8_t> &scratch,
                  Dump &out)
{
    const uint8_t *src = blockData(phys);

    const uint64_t word0 = loadSharedWord(src);
    if (!Descriptor::validMagic(word0))
        return BlockReadStatus::Empty;  // never used, or decommitted
    const Descriptor desc = Descriptor::unpack(word0);

    if (desc.type == EntryType::Skip) {
        const uint64_t pos = loadSharedWord(src + 8);
        if (pos >= window_start && pos < window_end) {
            ++out.skippedBlocks;
            return BlockReadStatus::Skipped;
        }
        return BlockReadStatus::Stale;
    }
    if (desc.type != EntryType::BlockHeader)
        return BlockReadStatus::Empty;  // interior bytes; not a block start

    const uint64_t q = loadSharedWord(src + 8);
    if (q < window_start || q >= window_end)
        return BlockReadStatus::Stale;  // outside the last-N window

    const std::size_t meta_idx = q % numActive;
    const auto rnd = static_cast<uint32_t>(q / numActive);
    const MetadataBlock &m = meta[meta_idx];

    const RndPos conf = m.loadConfirmed();
    std::size_t readable = 0;
    if (conf.rnd == rnd) {
        if (conf.pos == cap) {
            readable = cap;  // complete current-round block
        } else {
            // Active block: readable only when every reservation has
            // been confirmed (Allocated.pos == Confirmed.pos, §4.1).
            const RndPos alloc = m.loadAllocated();
            if (alloc.rnd == rnd && alloc.pos == conf.pos) {
                readable = conf.pos;
            } else {
                ++out.unreadableBlocks;
                return BlockReadStatus::Unreadable;
            }
        }
    } else if (conf.rnd > rnd) {
        // Older round of this metadata: considered filled (§3.3). The
        // physical block may since have been re-locked; the post-copy
        // header re-check below catches that.
        readable = cap;
    } else {
        return BlockReadStatus::Stale;  // header claims a future round
    }

    // readable is a sum of 8-byte-aligned entry sizes in any healthy
    // state; a torn or corrupted metadata word must degrade to a short
    // read, never to the word-copy loop writing past scratch's end.
    const std::size_t copy_len = readable & ~std::size_t(7);
    if (copy_len < EntryLayout::blockHeaderBytes) {
        ++out.unreadableBlocks;  // corrupt state; nothing parseable
        return BlockReadStatus::Unreadable;
    }
    if (scratch.size() < copy_len)
        scratch.resize(copy_len);
    for (std::size_t w = 0; w < copy_len; w += 8) {
        const uint64_t word = loadSharedWord(src + w);
        std::memcpy(scratch.data() + w, &word, 8);
    }
    std::atomic_thread_fence(std::memory_order_acquire);

    // Critical window: the speculative copy is complete but not yet
    // validated; any concurrent write to this block must now be
    // detected and the copy abandoned (§4.3).
    BTRACE_TEST_YIELD(ReadPostCopy);

    // Re-validate: same header, and for current-round blocks the same
    // confirmation state (a change means writers touched the block
    // mid-copy).
    const uint64_t word0b = loadSharedWord(src);
    const uint64_t qb = loadSharedWord(src + 8);
    bool valid = word0b == word0 && qb == q;
    if (valid && conf.rnd == rnd) {
        const RndPos conf2 = m.loadConfirmed();
        valid = conf2 == conf ||
                (conf.pos == cap && conf2.rnd == rnd);
        if (valid && readable < cap) {
            const RndPos alloc2 = m.loadAllocated();
            valid = alloc2.rnd == rnd && alloc2.pos == conf.pos;
        }
    }
    if (!valid)
        return BlockReadStatus::Abandoned;

    // Parse the copy; discard the whole block if the tiling is broken
    // (conservative: a torn block must never contaminate the dump).
    EntryCursor cursor(scratch.data() + EntryLayout::blockHeaderBytes,
                       copy_len - EntryLayout::blockHeaderBytes);
    std::vector<DumpEntry> parsed;
    EntryView view;
    while (cursor.next(view)) {
        if (view.type != EntryType::Normal)
            continue;
        DumpEntry e;
        e.stamp = view.stamp;
        e.size = view.size;
        e.core = view.core;
        e.thread = view.thread;
        e.category = view.category;
        e.payloadOk = view.payloadOk;
        parsed.push_back(e);
    }
    if (cursor.malformed())
        return BlockReadStatus::Abandoned;
    out.entries.insert(out.entries.end(), parsed.begin(), parsed.end());
    return BlockReadStatus::Data;
}

Dump
BTrace::dump()
{
    // Snapshot-peek over the whole retention window: a fresh cursor in
    // readOpen mode reads every readable block (open ones included),
    // closes nothing, and reports no loss accounting.
    DumpCursor fresh;
    DumpOptions opts;
    opts.readOpen = true;
    return dumpFrom(fresh, opts);
}

Dump
BTrace::dumpFrom(DumpCursor &cursor, const DumpOptions &opts)
{
    Dump out;
    EpochRegistry::Guard guard(consumers);

    const RatioPos g =
        RatioPos::unpack(global->load(std::memory_order_acquire));
    const uint64_t n = numActive * g.ratio;
    const uint64_t window_end = g.pos;
    const uint64_t window_start = window_end > n ? window_end - n : 0;

    // Snapshot-peek mode (closeActive wins when both are set): read
    // open blocks in place, keep walking past them, and suppress the
    // loss accounting — a snapshot re-reads the same window later, so
    // charging overwrittenPositions would misreport retention churn as
    // data loss.
    const bool peek = opts.readOpen && !opts.closeActive;

    // Catch up to the overwrite frontier (§4.3): positions the
    // producers already lapped are gone. Report how many, so the
    // caller sees the data loss instead of a silent cursor jump.
    if (!peek && window_start > cursor.position)
        out.overwrittenPositions = window_start - cursor.position;
    uint64_t q = std::max(cursor.position, window_start);

    std::vector<uint8_t> scratch(cap);
    double close_cost = 0.0;
    for (; q < window_end; ++q) {
        const std::size_t meta_idx = q % numActive;
        const auto rnd = static_cast<uint32_t>(q / numActive);
        const MetadataBlock &m = meta[meta_idx];
        const RndPos conf = m.loadConfirmed();

        if (conf.rnd == rnd && conf.pos < cap) {
            // Current-round block, still being filled. With
            // closeActive we shut it (§4.3 non-filled handling) so
            // its contents can be returned now and producers move to
            // a fresh block; a snapshot-peek reads it in place and
            // walks on; an incremental consumer stops here —
            // consuming a partial block would lose its later entries.
            if (opts.closeActive) {
                const RndPos alloc = m.loadAllocated();
                if (alloc.rnd == rnd && alloc.pos == conf.pos)
                    closeRound(meta_idx, rnd, close_cost,
                               BlockCloseReason::Consumer);
                // An in-flight writer keeps the block incomplete;
                // fall through — readBlock will classify it.
            } else if (!peek) {
                break;
            }
        } else if (conf.rnd < rnd) {
            // Metadata has not reached this round: either an
            // advancement in flight (worth waiting for near the
            // frontier) or a permanently orphaned candidate. A
            // snapshot never waits — it still reads the position (the
            // physical block may hold a countable skip marker) and
            // keeps walking.
            if (!peek) {
                if (window_end - q <= 2 * numActive)
                    break;
                continue;
            }
        }

        const BlockReadStatus r =
            readBlock(physicalOf(q), q, q + 1, scratch, out);
        if (r == BlockReadStatus::Data ||
            r == BlockReadStatus::Skipped ||
            r == BlockReadStatus::Unreadable)
            continue;

        if (peek) {
            // Snapshot semantics: a vanished or invalidated block is
            // a transient abandoned read, never charged as loss.
            if (r == BlockReadStatus::Abandoned)
                ++out.abandonedBlocks;
            continue;
        }

        // The block for q yielded nothing (vanished header, header
        // from another lap, or a copy invalidated mid-read). If the
        // producers have lapped q by now — the head moved a full
        // buffer past it while this dump was in flight — the data is
        // permanently gone and belongs in overwrittenPositions, the
        // same bucket as positions lost before the read started. A
        // failed speculative read used to be misfiled as a transient
        // abandonedBlocks (or dropped silently), hiding real data
        // loss at the wrap boundary.
        const RatioPos now = RatioPos::unpack(
            global->load(std::memory_order_acquire));
        if (now.pos > q + numActive * now.ratio)
            ++out.overwrittenPositions;
        else if (r == BlockReadStatus::Abandoned)
            ++out.abandonedBlocks;
    }
    if (!peek)
        journalEmit(JournalEventKind::ConsumerPass,
                    EventJournal::kNoCore, q, out.entries.size());
    cursor.position = q;
    return out;
}

Dump
BTrace::dumpSince(uint64_t &cursor, bool close_active)
{
    DumpCursor c;
    c.position = cursor;
    DumpOptions opts;
    opts.closeActive = close_active;
    Dump d = dumpFrom(c, opts);
    cursor = c.position;
    return d;
}

} // namespace btrace
