#include "core/auditor.h"

#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

#include "trace/event.h"

namespace btrace {

namespace {

uint64_t
loadWord(const uint8_t *src)
{
    return std::atomic_ref<const uint64_t>(
               *reinterpret_cast<const uint64_t *>(src))
        .load(std::memory_order_relaxed);
}

__attribute__((format(printf, 2, 3))) void
addViolation(std::vector<std::string> &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out.emplace_back(buf);
}

} // namespace

std::string
AuditReport::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "audit: %s, %zu violation(s); confirmed=%" PRIu64
        " tiled(header=%" PRIu64 " normal=%" PRIu64 " dummy=%" PRIu64
        "); blocks complete=%" PRIu64 " partial=%" PRIu64
        " sacrificed=%" PRIu64 " reclaimed=%" PRIu64 "; leased=%" PRIu64,
        ok() ? "ok" : "FAILED", violations.size(), totals.confirmedBytes,
        totals.headerBytes, totals.normalBytes, totals.dummyBytes,
        totals.completeBlocks, totals.partialBlocks,
        totals.sacrificedBlocks, totals.reclaimedBlocks,
        totals.leasedBytes);
    std::string s(buf);
    for (const std::string &v : violations) {
        s += "\n  - ";
        s += v;
    }
    return s;
}

AuditReport
BTraceAuditor::audit() const
{
    AuditReport rep;
    auto &bad = rep.violations;
    AuditTotals &tot = rep.totals;

    const RatioPos g =
        RatioPos::unpack(bt.global->load(std::memory_order_acquire));
    const std::size_t A = bt.numActive;
    const std::size_t cap = bt.cap;

    if (g.frozen)
        addViolation(bad, "global word frozen outside a resize");
    if (g.pos < A)
        addViolation(bad, "global position %" PRIu64
                          " below the %zu construction candidates",
                     g.pos, A);

    // --- Per-metadata accounting and data-block tiling ---------------
    uint64_t deficit_total = 0;
    for (std::size_t m = 0; m < A; ++m) {
        const RndPos alloc = bt.meta[m].loadAllocated();
        const RndPos conf = bt.meta[m].loadConfirmed();

        if (alloc.rnd != conf.rnd) {
            addViolation(bad,
                         "meta %zu: Allocated round %u != Confirmed "
                         "round %u on a quiesced tracer",
                         m, alloc.rnd, conf.rnd);
            continue;
        }
        if (conf.pos > cap) {
            addViolation(bad, "meta %zu: confirmed %u bytes > capacity %zu",
                         m, conf.pos, cap);
            continue;
        }
        // Completeness: quiesced means every reservation that fits the
        // block has been confirmed (writer, boundary fill, or close).
        // The one legal exception is the residue of a revoked lease:
        // slots served but never confirmed stay unpublished forever,
        // and the tracer accounts them in leasedOutstanding. The
        // deficits are summed and reconciled against that counter
        // below, so a deficit with no lease to blame still fails.
        const auto reserved =
            static_cast<uint32_t>(std::min<uint64_t>(alloc.pos, cap));
        if (conf.pos > reserved) {
            addViolation(bad,
                         "meta %zu round %u: %u bytes confirmed exceed "
                         "the %u reserved",
                         m, conf.rnd, conf.pos, reserved);
            continue;
        }
        tot.confirmedBytes += conf.pos;
        if (conf.pos == cap)
            ++tot.completeBlocks;
        else
            ++tot.partialBlocks;
        if (conf.pos != reserved) {
            deficit_total += reserved - conf.pos;
            tot.leasedBytes += reserved - conf.pos;
            // Out-of-order confirmation puts the unconfirmed hole
            // anywhere in the reserved span; a prefix tiling of the
            // confirmed count is meaningless here.
            continue;
        }

        if (conf.rnd == 0)
            continue;  // synthetic construction round; no data written

        // Round monotonicity: the round's candidate position must have
        // been handed out by the global counter already.
        const uint64_t pos = uint64_t(conf.rnd) * A + m;
        if (pos >= g.pos) {
            addViolation(bad,
                         "meta %zu: round %u implies position %" PRIu64
                         " >= global position %" PRIu64,
                         m, conf.rnd, pos, g.pos);
            continue;
        }
        if (conf.pos < EntryLayout::blockHeaderBytes) {
            addViolation(bad,
                         "meta %zu round %u: confirmed %u bytes, less "
                         "than the block header",
                         m, conf.rnd, conf.pos);
            continue;
        }

        // Tile the managed data block against the confirmed count.
        const uint8_t *blk = bt.blockData(bt.physicalOf(pos));
        const uint64_t word0 = loadWord(blk);
        if (!Descriptor::validMagic(word0)) {
            // A shrink decommits the physical pages of rounds mapped
            // under an older ratio; those reads return zeros. Only an
            // old-geometry round may legitimately be zeroed.
            if (bt.ratioLog.ratioAt(pos) != g.ratio) {
                ++tot.reclaimedBlocks;
                continue;
            }
            addViolation(bad,
                         "meta %zu round %u: current-geometry block "
                         "lost its header (word 0x%016" PRIx64 ")",
                         m, conf.rnd, word0);
            continue;
        }
        const Descriptor desc = Descriptor::unpack(word0);
        if (desc.type == EntryType::Skip) {
            // A wrap-around advancer sacrificed this block (§3.4) by
            // scribbling a SKP marker over its header; its remaining
            // contents are intentionally unreachable.
            ++tot.sacrificedBlocks;
            continue;
        }
        if (desc.type != EntryType::BlockHeader) {
            addViolation(bad,
                         "meta %zu round %u: block starts with entry "
                         "type %u, not a header",
                         m, conf.rnd, unsigned(desc.type));
            continue;
        }
        const uint64_t hdr_pos = loadWord(blk + 8);
        if (hdr_pos != pos) {
            addViolation(bad,
                         "meta %zu round %u: header position %" PRIu64
                         " != metadata position %" PRIu64,
                         m, conf.rnd, hdr_pos, pos);
            continue;
        }

        uint64_t tiled = EntryLayout::blockHeaderBytes;
        uint64_t normal = 0, dummy = 0;
        EntryCursor cursor(blk + EntryLayout::blockHeaderBytes,
                           conf.pos - EntryLayout::blockHeaderBytes);
        EntryView view;
        bool interior_ok = true;
        while (cursor.next(view)) {
            tiled += view.size;
            if (view.type == EntryType::Normal) {
                normal += view.size;
            } else if (view.type == EntryType::Dummy) {
                dummy += view.size;
            } else {
                addViolation(bad,
                             "meta %zu round %u: interior entry of "
                             "type %u at offset %" PRIu64,
                             m, conf.rnd, unsigned(view.type),
                             tiled - view.size);
                interior_ok = false;
                break;
            }
        }
        if (!interior_ok)
            continue;
        if (cursor.malformed()) {
            addViolation(bad,
                         "meta %zu round %u: malformed entry tiling "
                         "after %" PRIu64 " bytes",
                         m, conf.rnd, tiled);
            continue;
        }
        if (tiled != conf.pos) {
            addViolation(bad,
                         "meta %zu round %u: confirmed %u bytes but "
                         "tiling covers %" PRIu64
                         " (header 16 + normal %" PRIu64
                         " + dummy %" PRIu64 ")",
                         m, conf.rnd, conf.pos, tiled, normal, dummy);
            continue;
        }
        tot.headerBytes += EntryLayout::blockHeaderBytes;
        tot.normalBytes += normal;
        tot.dummyBytes += dummy;
    }

    // Every reserved-but-unconfirmed byte must be claimed by a lease:
    // grants add the span to leasedOutstanding and closes subtract
    // what they publish, so the counter is exactly the unpublished
    // residue. With no leases in play it is zero and any deficit is a
    // lost confirm.
    if (const uint64_t outstanding =
            bt.countersSnapshot().leasedOutstanding;
        deficit_total != outstanding) {
        addViolation(bad,
                     "reserved-but-unconfirmed bytes %" PRIu64
                     " != leased-outstanding counter %" PRIu64,
                     deficit_total, outstanding);
    }

    // --- Window-wide header uniqueness -------------------------------
    const uint64_t n = A * g.ratio;
    std::unordered_set<uint64_t> positions;
    uint64_t visible_skips = 0;
    for (uint64_t phys = 0; phys < n; ++phys) {
        const uint8_t *blk = bt.blockData(phys);
        const uint64_t word0 = loadWord(blk);
        if (!Descriptor::validMagic(word0))
            continue;
        const Descriptor desc = Descriptor::unpack(word0);
        if (desc.type == EntryType::Skip) {
            ++visible_skips;
            continue;
        }
        if (desc.type != EntryType::BlockHeader)
            continue;
        const uint64_t pos = loadWord(blk + 8);
        if (pos >= g.pos) {
            addViolation(bad,
                         "phys %" PRIu64 ": header position %" PRIu64
                         " was never handed out (global %" PRIu64 ")",
                         phys, pos, g.pos);
            continue;
        }
        // Map the position through the ratio in force when it was
        // handed out; pre-resize leftovers legitimately live at their
        // old-geometry slot.
        const uint64_t owner =
            pos % (uint64_t(A) * bt.ratioLog.ratioAt(pos));
        if (owner != phys) {
            addViolation(bad,
                         "phys %" PRIu64 ": header position %" PRIu64
                         " belongs to physical block %" PRIu64,
                         phys, pos, owner);
            continue;
        }
        if (!positions.insert(pos).second) {
            addViolation(bad,
                         "duplicate block position %" PRIu64
                         " (also at phys %" PRIu64 ")",
                         pos, phys);
        }
    }

    // --- Counter consistency -----------------------------------------
    const BTraceCounters::Snapshot c = bt.countersSnapshot();
    if (c.dummyBytes % EntryLayout::align != 0)
        addViolation(bad, "dummyBytes counter %" PRIu64 " not 8-aligned",
                     c.dummyBytes);
    if (tot.dummyBytes > c.dummyBytes) {
        addViolation(bad,
                     "tiled dummy bytes %" PRIu64
                     " exceed cumulative counter %" PRIu64,
                     tot.dummyBytes, c.dummyBytes);
    }
    if (visible_skips > c.skips) {
        addViolation(bad,
                     "%" PRIu64 " visible skip markers exceed skip "
                     "counter %" PRIu64,
                     visible_skips, c.skips);
    }
    // Every advancement-loop outcome consumed one candidate position;
    // frozen backoffs and re-checked candidates consume more, so the
    // counted outcomes bound the consumed positions from below.
    const uint64_t consumed = g.pos - std::min<uint64_t>(g.pos, A);
    const uint64_t outcomes = c.advances + c.skips +
                              c.lockRaces + c.coreRaces;
    if (outcomes > consumed) {
        addViolation(bad,
                     "advancement outcomes %" PRIu64
                     " exceed consumed candidates %" PRIu64,
                     outcomes, consumed);
    }

    return rep;
}

} // namespace btrace
