/**
 * @file
 * The per-active-block metadata record (§3.3, §4.1).
 *
 * Each of the A metadata blocks holds two packed RndPos words:
 * Allocated (bumped by producers reserving space) and Confirmed (a
 * *count* of confirmed bytes, enabling out-of-order confirmation,
 * §3.4). The paper sizes metadata blocks at 128 bytes; we reserve the
 * same so two metadata blocks never share a cache line.
 *
 * Key invariant (see DESIGN.md §3): every byte of a block's capacity
 * is confirmed exactly once — by its writer, by a boundary dummy fill,
 * or by a closing fill — so `Confirmed.pos == capacity` iff the block
 * is complete, and the round-advancing CAS on Confirmed can only
 * succeed on complete blocks. That is what makes the unconditional
 * confirm fetch_add safe across rounds.
 */

#ifndef BTRACE_CORE_METADATA_H
#define BTRACE_CORE_METADATA_H

#include <atomic>
#include <cstdint>

#include "common/packed64.h"

namespace btrace {

/** Metadata for one active block slot; 128 bytes, cache-aligned. */
struct alignas(128) MetadataBlock
{
    /** [Rnd | Pos]: reservation high-water mark (may overshoot). */
    std::atomic<uint64_t> allocated{0};
    /** [Rnd | Pos]: count of confirmed bytes in the current round. */
    std::atomic<uint64_t> confirmed{0};

    uint8_t pad[128 - 2 * sizeof(std::atomic<uint64_t>)] = {};

    /** Snapshot helpers. */
    RndPos
    loadAllocated(std::memory_order mo = std::memory_order_acquire) const
    {
        return RndPos::unpack(allocated.load(mo));
    }

    RndPos
    loadConfirmed(std::memory_order mo = std::memory_order_acquire) const
    {
        return RndPos::unpack(confirmed.load(mo));
    }
};

static_assert(sizeof(MetadataBlock) == 128,
              "metadata block must match the paper's 128-byte footprint");

} // namespace btrace

#endif // BTRACE_CORE_METADATA_H
